//! Regenerates — and, with `--check`, verifies — the golden fixtures used by
//! `tests/relayer_strategies.rs` and `tests/multi_channel.rs`.
//!
//! The fixtures pin the exact `ScenarioOutcome`s of small fig8/fig9/fig11/
//! fig12-shaped runs so the determinism tests can prove that the pluggable
//! relayer pipeline's default strategy reproduces the pre-refactor relayer
//! bit for bit. Regenerate (and carefully review the diff!) with:
//!
//! ```text
//! cargo run --release -p xcc-bench --bin goldens > tests/fixtures/default_strategy_goldens.json
//! ```
//!
//! In `--check` mode no file is written: every fixture set is regenerated
//! in-memory and compared against `tests/fixtures/`, and the process exits
//! non-zero on any drift — CI runs this so the fixtures can never silently
//! diverge from the code that produces them.

use serde::{Deserialize, Serialize};
use xcc_bench::timing::Stopwatch;
use xcc_framework::registry;
use xcc_framework::scenarios;
use xcc_framework::spec::ExperimentSpec;
use xcc_framework::{ScenarioOutcome, SweepMode, WorkProfile};
use xcc_relayer::strategy::{ChannelPolicy, SequenceTracking};

/// The spec set behind the golden fixtures: one small point per paper figure
/// the relayer refactor must preserve (Figs. 8, 9, 11 and 12).
pub fn golden_specs() -> Vec<ExperimentSpec> {
    vec![
        ExperimentSpec::relayer_throughput()
            .named("golden/fig8/rate=20/rtt=0")
            .relayers(1)
            .rtt_ms(0)
            .input_rate(20)
            .measurement_blocks(5)
            .seed(42),
        ExperimentSpec::relayer_throughput()
            .named("golden/fig8/rate=60/rtt=200")
            .relayers(1)
            .rtt_ms(200)
            .input_rate(60)
            .measurement_blocks(5)
            .seed(42),
        ExperimentSpec::relayer_throughput()
            .named("golden/fig9/rate=20/rtt=200")
            .relayers(2)
            .rtt_ms(200)
            .input_rate(20)
            .measurement_blocks(5)
            .seed(42),
        ExperimentSpec::relayer_throughput()
            .named("golden/fig11/rate=60/rtt=200")
            .relayers(2)
            .rtt_ms(200)
            .input_rate(60)
            .measurement_blocks(5)
            .seed(42),
        ExperimentSpec::latency()
            .named("golden/fig12/transfers=400")
            .transfers(400)
            .submission_blocks(1)
            .rtt_ms(200)
            .seed(42),
    ]
}

/// The spec set behind the multi-channel golden fixture: small two-channel
/// runs with the default strategy, pinning the per-channel bookkeeping.
/// Regenerate with:
///
/// ```text
/// cargo run --release -p xcc-bench --bin goldens -- --multi-channel \
///     > tests/fixtures/multi_channel_goldens.json
/// ```
pub fn multi_channel_golden_specs() -> Vec<ExperimentSpec> {
    vec![
        ExperimentSpec::relayer_throughput()
            .named("golden/multi_channel/rate=20/channels=2/rtt=0")
            .relayers(1)
            .channels(2)
            .rtt_ms(0)
            .input_rate(20)
            .measurement_blocks(5)
            .seed(42),
        ExperimentSpec::relayer_throughput()
            .named("golden/multi_channel/rate=40/channels=2/rtt=200/weighted")
            .relayers(1)
            .channels(2)
            .channel_weights([3, 1])
            .rtt_ms(200)
            .input_rate(40)
            .measurement_blocks(5)
            .seed(42),
    ]
}

/// The spec set behind the sequence-race golden fixture: the §V straddled-
/// commit repro under both sequence-tracking arms, pinning the race's cost
/// (Resync) and the fixed behaviour (MempoolAware, zero broadcast
/// failures). Regenerate with:
///
/// ```text
/// cargo run --release -p xcc-bench --bin goldens -- --sequence-race \
///     > tests/fixtures/sequence_race_goldens.json
/// ```
pub fn sequence_race_golden_specs() -> Vec<ExperimentSpec> {
    let repro = ExperimentSpec::relayer_throughput()
        .named("golden/sequence_race/rate=40/rtt=0")
        .relayers(1)
        .rtt_ms(0)
        .input_rate(40)
        .measurement_blocks(6)
        .seed(42);
    vec![
        repro
            .clone()
            .named("golden/sequence_race/rate=40/rtt=0/seqtrack=resync")
            .sequence_tracking(SequenceTracking::Resync),
        repro
            .named("golden/sequence_race/rate=40/rtt=0/seqtrack=mempool")
            .sequence_tracking(SequenceTracking::MempoolAware),
    ]
}

/// The spec set behind the dedicated-scaling golden fixture: the same
/// 4-channel, one-`relayer_count` deployment under both channel policies.
/// The shared-process arm pins the per-process throughput cap (the flat
/// `multi_channel_scaling` curve), the dedicated arm pins the fleet of one
/// relayer process per channel breaking it by ≥2× — the acceptance bar
/// `tests/dedicated_fleet.rs` asserts against this fixture. Regenerate with:
///
/// ```text
/// cargo run --release -p xcc-bench --bin goldens -- --dedicated-scaling \
///     > tests/fixtures/dedicated_scaling_goldens.json
/// ```
pub fn dedicated_scaling_golden_specs() -> Vec<ExperimentSpec> {
    let base = ExperimentSpec::relayer_throughput()
        .relayers(1)
        .channels(4)
        .rtt_ms(0)
        .input_rate(120)
        .measurement_blocks(6)
        .seed(42);
    vec![
        base.clone()
            .named("golden/dedicated_scaling/rate=120/channels=4/policy=fair-share"),
        base.named("golden/dedicated_scaling/rate=120/channels=4/policy=dedicated")
            .channel_policy(ChannelPolicy::Dedicated),
    ]
}

/// The spec set behind one fault-scenario golden fixture: the quick-mode
/// grid of the registered scenario, each point renamed under the `golden/`
/// prefix (the sweep already suffixes every point with `/faults=<label>`).
/// Pulling the grid straight from the registry keeps the fixture in
/// lockstep with the scenario definition — editing the scenario's grid is a
/// reviewed fixture regeneration, never a silent drift. Regenerate with:
///
/// ```text
/// cargo run --release -p xcc-bench --bin goldens -- --relayer-crash \
///     > tests/fixtures/relayer_crash_goldens.json
/// ```
///
/// (and `--chain-halt` / `--client-expiry` for the other two scenarios).
pub fn fault_scenario_specs(scenario: &str) -> Vec<ExperimentSpec> {
    registry_scenario_specs(scenario)
}

/// The spec set behind one topology-scenario golden fixture: the quick-mode
/// grid of the registered scenario, each point renamed under the `golden/`
/// prefix (the sweep already suffixes every point with `/topo=<label>`).
/// The hub fixture pins the measured hub-vs-pair aggregate throughput and
/// the per-hop latency breakdown. Regenerate with:
///
/// ```text
/// cargo run --release -p xcc-bench --bin goldens -- --hub-spoke \
///     > tests/fixtures/hub_spoke_scaling_goldens.json
/// ```
///
/// (and `--mesh` for `mesh_contention`).
pub fn topology_scenario_specs(scenario: &str) -> Vec<ExperimentSpec> {
    registry_scenario_specs(scenario)
}

/// The quick-mode grid of a registered scenario, each point renamed under
/// the `golden/` prefix. Pulling the grid straight from the registry keeps
/// the fixture in lockstep with the scenario definition — editing the
/// scenario's grid is a reviewed fixture regeneration, never a silent drift.
fn registry_scenario_specs(scenario: &str) -> Vec<ExperimentSpec> {
    let entry = registry::get(scenario).expect("scenario is registered");
    entry
        .grid(SweepMode::Quick)
        .points()
        .into_iter()
        .map(|spec| {
            let name = format!("golden/{}", spec.name);
            spec.named(name)
        })
        .collect()
}

/// Every fixture set: the `--check` mode walks all of them.
fn fixture_sets() -> Vec<(&'static str, Vec<ExperimentSpec>)> {
    vec![
        (
            "tests/fixtures/default_strategy_goldens.json",
            golden_specs(),
        ),
        (
            "tests/fixtures/multi_channel_goldens.json",
            multi_channel_golden_specs(),
        ),
        (
            "tests/fixtures/sequence_race_goldens.json",
            sequence_race_golden_specs(),
        ),
        (
            "tests/fixtures/dedicated_scaling_goldens.json",
            dedicated_scaling_golden_specs(),
        ),
        (
            "tests/fixtures/relayer_crash_goldens.json",
            fault_scenario_specs("relayer_crash"),
        ),
        (
            "tests/fixtures/chain_halt_goldens.json",
            fault_scenario_specs("chain_halt"),
        ),
        (
            "tests/fixtures/client_expiry_goldens.json",
            fault_scenario_specs("client_expiry"),
        ),
        (
            "tests/fixtures/hub_spoke_scaling_goldens.json",
            topology_scenario_specs("hub_spoke_scaling"),
        ),
        (
            "tests/fixtures/mesh_contention_goldens.json",
            topology_scenario_specs("mesh_contention"),
        ),
    ]
}

fn regenerate(specs: &[ExperimentSpec]) -> Vec<ScenarioOutcome> {
    specs.iter().map(scenarios::run).collect()
}

/// Regenerates every fixture set in-memory and diffs it against the file on
/// disk. Returns how many fixtures drifted.
fn check_fixtures() -> usize {
    let mut drifted = 0;
    for (path, specs) in fixture_sets() {
        let on_disk = match std::fs::read_to_string(path) {
            Ok(contents) => contents,
            Err(err) => {
                eprintln!("DRIFT: cannot read {path}: {err}");
                drifted += 1;
                continue;
            }
        };
        let pinned: Vec<ScenarioOutcome> = match serde_json::from_str(&on_disk) {
            Ok(outcomes) => outcomes,
            Err(err) => {
                eprintln!("DRIFT: {path} does not parse: {err}");
                drifted += 1;
                continue;
            }
        };
        let fresh = regenerate(&specs);
        if fresh == pinned {
            println!("ok: {path} ({} outcomes)", fresh.len());
        } else {
            drifted += 1;
            eprintln!("DRIFT: {path} no longer matches the code that produces it");
            for (fresh, pinned) in fresh.iter().zip(&pinned) {
                if fresh != pinned {
                    eprintln!("  {} diverged", pinned.spec.name);
                }
            }
            if fresh.len() != pinned.len() {
                eprintln!(
                    "  fixture has {} outcomes, regeneration produced {}",
                    pinned.len(),
                    fresh.len()
                );
            }
            eprintln!("  regenerate with the `goldens` bin and review the diff");
        }
    }
    drifted
}

/// One fixture set's row in `BENCH_golden.json`: how long the host took to
/// replay it, and the exact xcc-prof work counters the replay performed.
///
/// `wall_clock_secs`/`events_per_sec` are human-facing and machine-dependent;
/// `outcomes`/`completed_transfers`/`work` are deterministic and exact-match
/// checked by `--bench --compare` (see docs/PERFORMANCE.md).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct BenchSet {
    fixture: String,
    outcomes: u64,
    completed_transfers: u64,
    wall_clock_secs: f64,
    events_per_sec: f64,
    work: WorkProfile,
}

/// The whole-replay totals: every field is the sum over [`BenchSet`] rows.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct BenchTotal {
    wall_clock_secs: f64,
    completed_transfers: u64,
    events_per_sec: f64,
    work: WorkProfile,
}

/// The `BENCH_golden.json` document written by `--bench` and diffed by
/// `--bench --compare`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
struct BenchReport {
    harness: String,
    event_unit: String,
    sets: Vec<BenchSet>,
    total: BenchTotal,
}

/// Replays every golden fixture set, timing each and collecting its
/// deterministic work profile. "Events" are fully completed transfers — the
/// unit every golden scenario produces and the denominator the paper's
/// throughput figures use.
fn run_bench() -> BenchReport {
    let mut sets = Vec::new();
    let mut total_secs = 0.0_f64;
    let mut total_completed = 0_u64;
    let mut total_work = WorkProfile::default();
    for (path, specs) in fixture_sets() {
        let watch = Stopwatch::start();
        let mut work = WorkProfile::default();
        let mut outcomes = Vec::new();
        for spec in &specs {
            let run = scenarios::run_raw(spec);
            work = work.merged(&run.work);
            outcomes.push(scenarios::outcome_from(spec, &run));
        }
        let secs = watch.elapsed_secs();
        let completed: u64 = outcomes.iter().map(|o| o.completed()).sum();
        total_secs += secs;
        total_completed += completed;
        total_work = total_work.merged(&work);
        eprintln!("bench: {path}: {secs:.3}s, {completed} completed transfers");
        sets.push(BenchSet {
            fixture: path.to_string(),
            outcomes: outcomes.len() as u64,
            completed_transfers: completed,
            wall_clock_secs: round3(secs),
            events_per_sec: round1(rate(completed, secs)),
            work,
        });
    }
    BenchReport {
        harness: "goldens --bench".to_string(),
        event_unit: "completed_transfers".to_string(),
        sets,
        total: BenchTotal {
            wall_clock_secs: round3(total_secs),
            completed_transfers: total_completed,
            events_per_sec: round1(rate(total_completed, total_secs)),
            work: total_work,
        },
    }
}

/// `--bench` mode: times the release-mode replay of every golden fixture set
/// and writes `BENCH_golden.json` at the workspace root, so the replay cost
/// trajectory stays visible across PRs.
fn bench_fixtures() -> std::io::Result<()> {
    let report = run_bench();
    let json = serde_json::to_string_pretty(&report).expect("report serializes");
    std::fs::write("BENCH_golden.json", format!("{json}\n"))?;
    println!("{json}");
    eprintln!("bench: wrote BENCH_golden.json");
    Ok(())
}

/// `--bench --compare` mode: replays every set in-memory and diffs the
/// deterministic columns against the committed `BENCH_golden.json`. Counter
/// or outcome drift is a failure (the caller exits 2); wall-clock deltas are
/// printed but never fail — timings are machine-dependent, counters are not.
fn compare_bench() -> usize {
    let committed: BenchReport = match std::fs::read_to_string("BENCH_golden.json") {
        Ok(contents) => match serde_json::from_str(&contents) {
            Ok(report) => report,
            Err(err) => {
                eprintln!("DRIFT: BENCH_golden.json does not parse: {err}");
                return 1;
            }
        },
        Err(err) => {
            eprintln!("DRIFT: cannot read BENCH_golden.json: {err}");
            return 1;
        }
    };
    let fresh = run_bench();
    let mut drifted = 0;
    if fresh.sets.len() != committed.sets.len() {
        eprintln!(
            "DRIFT: BENCH_golden.json pins {} set(s), the replay produced {}",
            committed.sets.len(),
            fresh.sets.len()
        );
        drifted += 1;
    }
    for (fresh_set, pinned) in fresh.sets.iter().zip(&committed.sets) {
        if fresh_set.fixture != pinned.fixture {
            eprintln!(
                "DRIFT: set order changed: expected `{}`, got `{}`",
                pinned.fixture, fresh_set.fixture
            );
            drifted += 1;
            continue;
        }
        let mut complaints = Vec::new();
        if fresh_set.outcomes != pinned.outcomes {
            complaints.push(format!(
                "outcomes {} -> {}",
                pinned.outcomes, fresh_set.outcomes
            ));
        }
        if fresh_set.completed_transfers != pinned.completed_transfers {
            complaints.push(format!(
                "completed_transfers {} -> {}",
                pinned.completed_transfers, fresh_set.completed_transfers
            ));
        }
        if fresh_set.work != pinned.work {
            complaints.push(format!(
                "work counters diverged (pinned {:?}, got {:?})",
                pinned.work, fresh_set.work
            ));
        }
        if complaints.is_empty() {
            println!(
                "ok: {} ({:.3}s now vs {:.3}s pinned)",
                pinned.fixture, fresh_set.wall_clock_secs, pinned.wall_clock_secs
            );
        } else {
            eprintln!("DRIFT: {}: {}", pinned.fixture, complaints.join("; "));
            drifted += 1;
        }
    }
    if fresh.total.work != committed.total.work
        || fresh.total.completed_transfers != committed.total.completed_transfers
    {
        eprintln!("DRIFT: totals diverged from BENCH_golden.json");
        drifted += 1;
    }
    println!(
        "wall-clock (informational): {:.3}s now vs {:.3}s pinned",
        fresh.total.wall_clock_secs, committed.total.wall_clock_secs
    );
    drifted
}

fn rate(events: u64, secs: f64) -> f64 {
    if secs > 0.0 {
        events as f64 / secs
    } else {
        0.0
    }
}

fn round3(x: f64) -> f64 {
    (x * 1000.0).round() / 1000.0
}

fn round1(x: f64) -> f64 {
    (x * 10.0).round() / 10.0
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if args.iter().any(|a| a == "--bench") {
        if args.iter().any(|a| a == "--compare") {
            let drifted = compare_bench();
            if drifted > 0 {
                eprintln!("{drifted} bench row(s) drifted");
                std::process::exit(2);
            }
            println!("bench counters match BENCH_golden.json");
            return;
        }
        bench_fixtures().expect("bench report written");
        return;
    }
    if args.iter().any(|a| a == "--check") {
        let drifted = check_fixtures();
        if drifted > 0 {
            eprintln!("{drifted} fixture set(s) drifted");
            std::process::exit(2);
        }
        println!("all golden fixtures match the code that produces them");
        return;
    }
    let specs = if args.iter().any(|a| a == "--multi-channel") {
        multi_channel_golden_specs()
    } else if args.iter().any(|a| a == "--sequence-race") {
        sequence_race_golden_specs()
    } else if args.iter().any(|a| a == "--dedicated-scaling") {
        dedicated_scaling_golden_specs()
    } else if args.iter().any(|a| a == "--relayer-crash") {
        fault_scenario_specs("relayer_crash")
    } else if args.iter().any(|a| a == "--chain-halt") {
        fault_scenario_specs("chain_halt")
    } else if args.iter().any(|a| a == "--client-expiry") {
        fault_scenario_specs("client_expiry")
    } else if args.iter().any(|a| a == "--hub-spoke") {
        topology_scenario_specs("hub_spoke_scaling")
    } else if args.iter().any(|a| a == "--mesh") {
        topology_scenario_specs("mesh_contention")
    } else {
        golden_specs()
    };
    let outcomes = regenerate(&specs);
    println!(
        "{}",
        serde_json::to_string_pretty(&outcomes).expect("outcomes serialize")
    );
}
