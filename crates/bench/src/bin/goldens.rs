//! Regenerates the default-strategy golden fixtures used by
//! `tests/relayer_strategies.rs`.
//!
//! The fixtures pin the exact `ScenarioOutcome`s of small fig8/fig9/fig11/
//! fig12-shaped runs so the determinism tests can prove that the pluggable
//! relayer pipeline's default strategy reproduces the pre-refactor relayer
//! bit for bit. Regenerate (and carefully review the diff!) with:
//!
//! ```text
//! cargo run --release -p xcc-bench --bin goldens > tests/fixtures/default_strategy_goldens.json
//! ```

use xcc_framework::scenarios;
use xcc_framework::spec::ExperimentSpec;

/// The spec set behind the golden fixtures: one small point per paper figure
/// the relayer refactor must preserve (Figs. 8, 9, 11 and 12).
pub fn golden_specs() -> Vec<ExperimentSpec> {
    vec![
        ExperimentSpec::relayer_throughput()
            .named("golden/fig8/rate=20/rtt=0")
            .relayers(1)
            .rtt_ms(0)
            .input_rate(20)
            .measurement_blocks(5)
            .seed(42),
        ExperimentSpec::relayer_throughput()
            .named("golden/fig8/rate=60/rtt=200")
            .relayers(1)
            .rtt_ms(200)
            .input_rate(60)
            .measurement_blocks(5)
            .seed(42),
        ExperimentSpec::relayer_throughput()
            .named("golden/fig9/rate=20/rtt=200")
            .relayers(2)
            .rtt_ms(200)
            .input_rate(20)
            .measurement_blocks(5)
            .seed(42),
        ExperimentSpec::relayer_throughput()
            .named("golden/fig11/rate=60/rtt=200")
            .relayers(2)
            .rtt_ms(200)
            .input_rate(60)
            .measurement_blocks(5)
            .seed(42),
        ExperimentSpec::latency()
            .named("golden/fig12/transfers=400")
            .transfers(400)
            .submission_blocks(1)
            .rtt_ms(200)
            .seed(42),
    ]
}

/// The spec set behind the multi-channel golden fixture: small two-channel
/// runs with the default strategy, pinning the per-channel bookkeeping.
/// Regenerate with:
///
/// ```text
/// cargo run --release -p xcc-bench --bin goldens -- --multi-channel \
///     > tests/fixtures/multi_channel_goldens.json
/// ```
pub fn multi_channel_golden_specs() -> Vec<ExperimentSpec> {
    vec![
        ExperimentSpec::relayer_throughput()
            .named("golden/multi_channel/rate=20/channels=2/rtt=0")
            .relayers(1)
            .channels(2)
            .rtt_ms(0)
            .input_rate(20)
            .measurement_blocks(5)
            .seed(42),
        ExperimentSpec::relayer_throughput()
            .named("golden/multi_channel/rate=40/channels=2/rtt=200/weighted")
            .relayers(1)
            .channels(2)
            .channel_weights([3, 1])
            .rtt_ms(200)
            .input_rate(40)
            .measurement_blocks(5)
            .seed(42),
    ]
}

fn main() {
    let specs = if std::env::args().any(|a| a == "--multi-channel") {
        multi_channel_golden_specs()
    } else {
        golden_specs()
    };
    let outcomes: Vec<_> = specs.iter().map(scenarios::run).collect();
    println!(
        "{}",
        serde_json::to_string_pretty(&outcomes).expect("outcomes serialize")
    );
}
