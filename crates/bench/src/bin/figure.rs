//! Runs any registered scenario by name:
//!
//! ```text
//! cargo run --release -p xcc-bench --bin figure -- fig8
//! cargo run --release -p xcc-bench --bin figure -- --list
//! ```
//!
//! Unknown names exit non-zero with the registry listing and, when the name
//! looks like a typo, a "did you mean" hint.

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("--list") | Some("-l") => {
            xcc_bench::print_scenario_list();
        }
        Some(name) => {
            if xcc_framework::registry::get(name).is_none() {
                eprintln!("unknown scenario `{name}`");
                if let Some(candidate) = xcc_framework::registry::suggest(name) {
                    eprintln!("did you mean `{candidate}`?");
                }
                eprintln!("registered scenarios:");
                for entry in xcc_framework::registry::entries() {
                    eprintln!("  {:<26} {}", entry.name, entry.title);
                }
                std::process::exit(2);
            }
            xcc_bench::run_and_print(name);
        }
    }
}
