//! Runs any registered scenario by name:
//!
//! ```text
//! cargo run --release -p xcc-bench --bin figure -- fig8
//! cargo run --release -p xcc-bench --bin figure -- --list
//! ```

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        None | Some("--list") | Some("-l") => {
            xcc_bench::print_scenario_list();
        }
        Some(name) => {
            if xcc_framework::registry::get(name).is_none() {
                eprintln!(
                    "unknown scenario `{name}`; registered scenarios: {}",
                    xcc_framework::registry::names().join(", ")
                );
                std::process::exit(2);
            }
            xcc_bench::run_and_print(name);
        }
    }
}
