//! The bench harness's wall-clock shim — the one place `Instant` is legal.
//!
//! The xcc-lint wall-clock rule (D2) bans `Instant`/`SystemTime` everywhere
//! in the workspace and carries a scoped exemption for exactly this file
//! (see `WALL_CLOCK_EXEMPT` in `xcc-lint`'s rules, pinned by the rule's
//! fixture test). The stopwatch measures the *host machine* replaying golden
//! fixtures, producing the human-facing `wall_clock_secs` numbers in
//! `BENCH_golden.json`; it never feeds simulated state, which is why the
//! exemption is sound. The exact-match regression signal is the xcc-prof
//! work counters, never these timings — see docs/PERFORMANCE.md.

/// A started wall-clock measurement.
pub struct Stopwatch {
    started: std::time::Instant,
}

impl Stopwatch {
    /// Starts timing now.
    #[allow(clippy::new_without_default)]
    pub fn start() -> Self {
        Stopwatch {
            started: std::time::Instant::now(),
        }
    }

    /// Seconds elapsed since [`Stopwatch::start`].
    pub fn elapsed_secs(&self) -> f64 {
        self.started.elapsed().as_secs_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stopwatch_reports_non_negative_elapsed_time() {
        let watch = Stopwatch::start();
        assert!(watch.elapsed_secs() >= 0.0);
    }
}
