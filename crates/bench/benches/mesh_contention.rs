//! Topology scenario `mesh_contention` (see the registry entry): a 3-chain
//! full mesh with one relayer process per directed channel, against the
//! single-pair baseline arm of the same spec.
//!
//! Sweep mode and output format come from `XCC_FULL_SWEEP` / `XCC_OUTPUT`
//! (see `xcc_framework::sweep`).

fn main() {
    xcc_bench::run_and_print("mesh_contention");
}
