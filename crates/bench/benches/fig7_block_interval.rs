//! Fig. 7: average block interval vs cross-chain transfer input rate.
//!
//! Sweep mode and output format come from `XCC_FULL_SWEEP` / `XCC_OUTPUT`
//! (see `xcc_framework::sweep`).

fn main() {
    xcc_bench::run_and_print("fig7");
}
