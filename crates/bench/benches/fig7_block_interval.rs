//! Fig. 7: average block interval vs cross-chain transfer input rate.

use xcc_framework::scenarios::tendermint_throughput;

fn main() {
    let full = std::env::var("XCC_FULL_SWEEP").is_ok();
    let rates: Vec<u64> = if full {
        vec![250, 500, 750, 1_000, 2_000, 3_000, 4_000, 5_000, 6_000, 7_000, 8_000, 9_000, 10_000, 11_000, 12_000, 13_000]
    } else {
        vec![250, 1_000, 3_000, 6_000, 9_000, 13_000]
    };
    println!("Fig. 7 — average block interval vs input rate");
    println!("{:>12} | {:>16}", "rate (rps)", "interval (s)");
    for rate in rates {
        let r = tendermint_throughput(rate, 200, 42);
        println!("{:>12} | {:>16.1}", rate, r.avg_block_interval_secs);
    }
}
