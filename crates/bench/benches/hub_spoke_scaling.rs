//! Topology scenario `hub_spoke_scaling` (see the registry entry): a hub and
//! three spokes with every transfer forwarded at the hub as a second IBC leg,
//! against the single-pair baseline arm of the same spec.
//!
//! Sweep mode and output format come from `XCC_FULL_SWEEP` / `XCC_OUTPUT`
//! (see `xcc_framework::sweep`).

fn main() {
    xcc_bench::run_and_print("hub_spoke_scaling");
}
