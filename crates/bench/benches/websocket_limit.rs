//! §V WebSocket space limit: a block carrying more IBC events than the 16 MiB WebSocket frame allows leaves most transfers stuck.
//!
//! Sweep mode and output format come from `XCC_FULL_SWEEP` / `XCC_OUTPUT`
//! (see `xcc_framework::sweep`).

fn main() {
    xcc_bench::run_and_print("websocket_limit");
}
