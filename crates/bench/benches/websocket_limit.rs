//! §V "WebSocket space limit": a block carrying more IBC events than the
//! 16 MiB WebSocket frame allows leaves most transfers stuck.

use xcc_framework::scenarios::websocket_limit_run;

fn main() {
    let transfers: u64 = if std::env::var("XCC_FULL_SWEEP").is_ok() { 100_000 } else { 60_000 };
    let r = websocket_limit_run(transfers, 42);
    println!("WebSocket frame-limit experiment ({} transfers in one block window)", r.requested);
    println!("  event collection failures: {}", r.event_collection_failures);
    println!("  completed: {} ({:.1}%)", r.completed, 100.0 * r.completed as f64 / r.requested.max(1) as f64);
    println!("  stuck:     {} ({:.1}%)", r.stuck, 100.0 * r.stuck as f64 / r.requested.max(1) as f64);
    println!("(paper: 2.5% completed, 15.7% timed out, 81.8% stuck)");
}
