//! Fig. 8: cross-chain transfer throughput with one Hermes relayer,
//! at 0 ms and 200 ms network latency.

use xcc_framework::scenarios::relayer_throughput;

fn main() {
    let full = std::env::var("XCC_FULL_SWEEP").is_ok();
    let rates: Vec<u64> = if full {
        vec![20, 40, 60, 80, 100, 120, 140, 160, 180, 200, 220, 240, 260, 280, 300]
    } else {
        vec![20, 60, 100, 140, 200, 300]
    };
    let blocks = if full { 50 } else { 15 };
    println!("Fig. 8 — throughput with one relayer ({} source blocks)", blocks);
    println!("{:>12} | {:>14} | {:>14}", "rate (rps)", "0 ms (TFPS)", "200 ms (TFPS)");
    for rate in rates {
        let lan = relayer_throughput(rate, 1, 0, blocks, 42);
        let wan = relayer_throughput(rate, 1, 200, blocks, 42);
        println!("{:>12} | {:>14.1} | {:>14.1}", rate, lan.throughput_tfps, wan.throughput_tfps);
    }
}
