//! Fig. 8: cross-chain transfer throughput with one Hermes relayer, at 0 ms and 200 ms network latency.
//!
//! Sweep mode and output format come from `XCC_FULL_SWEEP` / `XCC_OUTPUT`
//! (see `xcc_framework::sweep`).

fn main() {
    xcc_bench::run_and_print("fig8");
}
