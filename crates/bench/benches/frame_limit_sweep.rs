//! Deployment-limit scenario `frame_limit_sweep` (see the registry entry):
//! the §V WebSocket frame limit × packet clearing as sweep axes.
//!
//! Sweep mode and output format come from `XCC_FULL_SWEEP` / `XCC_OUTPUT`
//! (see `xcc_framework::sweep`).

fn main() {
    xcc_bench::run_and_print("frame_limit_sweep");
}
