//! Fault-injection scenario `client_expiry` (see the registry entry): a
//! light client expiring mid-run and stranding its channel, against a
//! healthy control arm.
//!
//! Sweep mode and output format come from `XCC_FULL_SWEEP` / `XCC_OUTPUT`
//! (see `xcc_framework::sweep`).

fn main() {
    xcc_bench::run_and_print("client_expiry");
}
