//! Fig. 10: transfer completion status within the measurement window,
//! one relayer, 200 ms latency.

use xcc_framework::scenarios::relayer_throughput;

fn main() {
    let full = std::env::var("XCC_FULL_SWEEP").is_ok();
    let rates: Vec<u64> = if full {
        vec![20, 40, 60, 80, 100, 120, 140, 160, 180, 200, 220, 240, 260, 280, 300]
    } else {
        vec![20, 60, 100, 160, 240, 300]
    };
    let blocks = if full { 50 } else { 15 };
    println!("Fig. 10 — completion status, one relayer, 200 ms ({} blocks)", blocks);
    println!("{:>12} | {:>10} | {:>10} | {:>10} | {:>14}", "rate (rps)", "completed", "partial", "initiated", "not committed");
    for rate in rates {
        let r = relayer_throughput(rate, 1, 200, blocks, 42);
        println!("{:>12} | {:>10} | {:>10} | {:>10} | {:>14}", rate, r.completed, r.partial, r.initiated, r.not_committed);
    }
}
