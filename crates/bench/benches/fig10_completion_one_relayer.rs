//! Fig. 10: transfer completion status within the measurement window, one relayer, 200 ms latency.
//!
//! Sweep mode and output format come from `XCC_FULL_SWEEP` / `XCC_OUTPUT`
//! (see `xcc_framework::sweep`).

fn main() {
    xcc_bench::run_and_print("fig10");
}
