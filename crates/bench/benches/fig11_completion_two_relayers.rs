//! Fig. 11: transfer completion status within the measurement window, two relayers, 200 ms latency.
//!
//! Sweep mode and output format come from `XCC_FULL_SWEEP` / `XCC_OUTPUT`
//! (see `xcc_framework::sweep`).

fn main() {
    xcc_bench::run_and_print("fig11");
}
