//! Deployment-challenge scenario `sequence_race` (see the registry entry):
//! the §V account-sequence race under committed-state resync vs
//! mempool-aware sequence tracking.
//!
//! Sweep mode and output format come from `XCC_FULL_SWEEP` / `XCC_OUTPUT`
//! (see `xcc_framework::sweep`).

fn main() {
    xcc_bench::run_and_print("sequence_race");
}
