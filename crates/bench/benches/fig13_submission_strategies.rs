//! Fig. 13: completion latency of a fixed batch of transfers under different submission strategies (spread over 1..64 block windows).
//!
//! Sweep mode and output format come from `XCC_FULL_SWEEP` / `XCC_OUTPUT`
//! (see `xcc_framework::sweep`).

fn main() {
    xcc_bench::run_and_print("fig13");
}
