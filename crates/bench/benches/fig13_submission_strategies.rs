//! Fig. 13: completion latency of a fixed batch of transfers under different
//! submission strategies (spread over 1..64 block windows).

use xcc_framework::scenarios::latency_run;

fn main() {
    let full = std::env::var("XCC_FULL_SWEEP").is_ok();
    let transfers: u64 = if full { 5_000 } else { 1_500 };
    let strategies: Vec<u64> = if full { vec![1, 2, 4, 8, 16, 32, 64] } else { vec![1, 2, 4, 8, 16, 32] };
    println!("Fig. 13 — completion latency vs submission strategy ({} transfers)", transfers);
    println!("{:>14} | {:>22}", "blocks", "completion latency (s)");
    for blocks in strategies {
        let r = latency_run(transfers, blocks, 200, 42);
        println!("{:>14} | {:>22.1}", blocks, r.completion_latency_secs);
    }
    println!("(paper, 5,000 transfers: 455 / 286 / 219 / 143 / 138 / 240 / 441 s for 1..64 blocks)");
}
