//! Fig. 9: cross-chain transfer throughput with two relayers serving a single channel (uncoordinated redundancy).
//!
//! Sweep mode and output format come from `XCC_FULL_SWEEP` / `XCC_OUTPUT`
//! (see `xcc_framework::sweep`).

fn main() {
    xcc_bench::run_and_print("fig9");
}
