//! Fig. 9: cross-chain transfer throughput with two relayers serving a
//! single channel (uncoordinated redundancy).

use xcc_framework::scenarios::relayer_throughput;

fn main() {
    let full = std::env::var("XCC_FULL_SWEEP").is_ok();
    let rates: Vec<u64> = if full {
        vec![20, 40, 60, 80, 100, 120, 140, 160, 180, 200, 220, 240, 260, 280, 300]
    } else {
        vec![20, 60, 100, 160, 240, 300]
    };
    let blocks = if full { 50 } else { 15 };
    println!("Fig. 9 — throughput with two relayers ({} source blocks)", blocks);
    println!("{:>12} | {:>14} | {:>14} | {:>16}", "rate (rps)", "0 ms (TFPS)", "200 ms (TFPS)", "redundant msgs");
    for rate in rates {
        let lan = relayer_throughput(rate, 2, 0, blocks, 42);
        let wan = relayer_throughput(rate, 2, 200, blocks, 42);
        println!("{:>12} | {:>14.1} | {:>14.1} | {:>16}", rate, lan.throughput_tfps, wan.throughput_tfps, wan.redundant_packet_errors);
    }
}
