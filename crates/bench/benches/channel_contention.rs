//! Multi-channel scenario `channel_contention` (see the registry entry):
//! skewed per-channel load under each channel policy.
//!
//! Sweep mode and output format come from `XCC_FULL_SWEEP` / `XCC_OUTPUT`
//! (see `xcc_framework::sweep`).

fn main() {
    xcc_bench::run_and_print("channel_contention");
}
