//! Strategy counterfactual scenario `fig13_adaptive_submission` (see the registry entry).
//!
//! Sweep mode and output format come from `XCC_FULL_SWEEP` / `XCC_OUTPUT`
//! (see `xcc_framework::sweep`).

fn main() {
    xcc_bench::run_and_print("fig13_adaptive_submission");
}
