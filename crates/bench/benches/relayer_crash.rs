//! Fault-injection scenario `relayer_crash` (see the registry entry): one
//! relayer process crashing and restarting cold mid-run, packet clearing as
//! the recovery mechanism, against a no-fault control arm.
//!
//! Sweep mode and output format come from `XCC_FULL_SWEEP` / `XCC_OUTPUT`
//! (see `xcc_framework::sweep`).

fn main() {
    xcc_bench::run_and_print("relayer_crash");
}
