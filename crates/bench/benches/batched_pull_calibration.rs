//! Calibration scenario `batched_pull_calibration` (see the registry
//! entry): the batched data fetcher's per-item pagination surcharge
//! (`DeploymentConfig::batched_pull_per_item_us`) swept around the
//! calibrated 120 µs, from free pagination up to 8× — how sensitive is the
//! batched fetcher's advantage over Hermes' chunked scans to the cost
//! model's calibration?
//!
//! Sweep mode and output format come from `XCC_FULL_SWEEP` / `XCC_OUTPUT`
//! (see `xcc_framework::sweep`).

fn main() {
    xcc_bench::run_and_print("batched_pull_calibration");
}
