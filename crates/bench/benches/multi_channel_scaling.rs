//! Multi-channel scenario `multi_channel_scaling` (see the registry entry):
//! one relayer serving 1/2/4 concurrent channels.
//!
//! Sweep mode and output format come from `XCC_FULL_SWEEP` / `XCC_OUTPUT`
//! (see `xcc_framework::sweep`).

fn main() {
    xcc_bench::run_and_print("multi_channel_scaling");
}
