//! Table I: execution summary for the Tendermint throughput experiments.
//!
//! Sweep mode and output format come from `XCC_FULL_SWEEP` / `XCC_OUTPUT`
//! (see `xcc_framework::sweep`).

fn main() {
    xcc_bench::run_and_print("table1");
}
