//! Table I: execution summary for the Tendermint throughput experiments.
//! Prints requests made / submitted / committed per input rate.

use xcc_framework::scenarios::tendermint_throughput;

fn rates() -> Vec<u64> {
    if std::env::var("XCC_FULL_SWEEP").is_ok() {
        vec![250, 1_000, 3_000, 6_000, 9_000, 10_000, 11_000, 12_000, 13_000, 14_000]
    } else {
        vec![250, 1_000, 3_000, 10_000, 12_000, 14_000]
    }
}

fn main() {
    println!("Table I — Tendermint throughput execution summary (simulated)");
    println!("{:>12} | {:>14} | {:>22} | {:>22}", "rate (rps)", "requests made", "submitted (%)", "committed of submitted (%)");
    for rate in rates() {
        let r = tendermint_throughput(rate, 200, 42);
        let submitted_pct = 100.0 * r.submitted as f64 / r.requests_made.max(1) as f64;
        let committed_pct = 100.0 * r.committed as f64 / r.submitted.max(1) as f64;
        println!(
            "{:>12} | {:>14} | {:>12} ({:>5.1}%) | {:>12} ({:>5.1}%)",
            rate, r.requests_made, r.submitted, submitted_pct, r.committed, committed_pct
        );
    }
}
