//! Smoke scenario: a tiny end-to-end run exercising every subsystem, used
//! by CI and by the `registry-docs` lint's scenario ↔ bench cross-check.
//!
//! Sweep mode and output format come from `XCC_FULL_SWEEP` / `XCC_OUTPUT`
//! (see `xcc_framework::sweep`).

fn main() {
    xcc_bench::run_and_print("smoke");
}
