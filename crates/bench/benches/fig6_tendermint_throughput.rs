//! Fig. 6: throughput achieved by the Tendermint blockchain vs input rate.

use xcc_framework::scenarios::tendermint_throughput;

fn main() {
    let full = std::env::var("XCC_FULL_SWEEP").is_ok();
    let rates: Vec<u64> = if full {
        vec![250, 500, 750, 1_000, 2_000, 3_000, 4_000, 5_000, 6_000, 7_000, 8_000, 9_000, 10_000, 11_000, 12_000, 13_000]
    } else {
        vec![250, 500, 1_000, 2_000, 3_000, 5_000, 9_000, 13_000]
    };
    let seeds: Vec<u64> = if full { (0..20).collect() } else { vec![1, 2, 3] };
    println!("Fig. 6 — Tendermint throughput (TFPS) vs input rate, {} seeds per rate", seeds.len());
    println!("{:>12} | {:>10} | {:>10} | {:>10}", "rate (rps)", "median", "min", "max");
    for rate in rates {
        let mut samples: Vec<f64> = seeds.iter().map(|s| tendermint_throughput(rate, 200, *s).throughput_tfps).collect();
        samples.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = samples[samples.len() / 2];
        println!("{:>12} | {:>10.0} | {:>10.0} | {:>10.0}", rate, median, samples[0], samples[samples.len() - 1]);
    }
}
