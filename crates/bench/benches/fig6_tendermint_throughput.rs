//! Fig. 6: throughput achieved by the Tendermint blockchain vs input rate.
//!
//! Sweep mode and output format come from `XCC_FULL_SWEEP` / `XCC_OUTPUT`
//! (see `xcc_framework::sweep`).

fn main() {
    xcc_bench::run_and_print("fig6");
}
