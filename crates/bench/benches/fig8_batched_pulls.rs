//! Strategy counterfactual scenario `fig8_batched_pulls` (see the registry entry).
//!
//! Sweep mode and output format come from `XCC_FULL_SWEEP` / `XCC_OUTPUT`
//! (see `xcc_framework::sweep`).

fn main() {
    xcc_bench::run_and_print("fig8_batched_pulls");
}
