//! Fig. 12: breakdown of the operations executed to process a large batch of
//! cross-chain transfers submitted within one block.

use xcc_framework::scenarios::latency_run;

fn main() {
    let transfers: u64 = if std::env::var("XCC_FULL_SWEEP").is_ok() { 5_000 } else { 1_000 };
    let r = latency_run(transfers, 1, 200, 42);
    println!("Fig. 12 — latency breakdown for {} transfers submitted in one block", transfers);
    println!("  completion latency:    {:>8.1} s   (paper, 5,000 transfers: 455 s)", r.completion_latency_secs);
    println!("  transfer phase (1-4):  {:>8.1} s   (paper: 126 s / 27.6%)", r.transfer_phase_secs);
    println!("  receive phase  (5-9):  {:>8.1} s   (paper: 261 s / 57.3%)", r.recv_phase_secs);
    println!("  ack phase    (10-13):  {:>8.1} s   (paper:  68 s / 14.9%)", r.ack_phase_secs);
    println!("  transfer data pull:    {:>8.1} s   (paper: 110 s / 24%)", r.transfer_pull_secs);
    println!("  recv data pull:        {:>8.1} s   (paper: 207 s / 45%)", r.recv_pull_secs);
    println!("  data-pull share:       {:>8.0} %   (paper: ~69%)", r.data_pull_share * 100.0);
}
