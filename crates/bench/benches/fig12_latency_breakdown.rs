//! Fig. 12: breakdown of the operations executed to process a large batch of cross-chain transfers submitted within one block.
//!
//! Sweep mode and output format come from `XCC_FULL_SWEEP` / `XCC_OUTPUT`
//! (see `xcc_framework::sweep`).

fn main() {
    xcc_bench::run_and_print("fig12");
}
