//! Fault-injection scenario `chain_halt` (see the registry entry): the
//! source chain halting outright, or stretching its block interval, against
//! a steady-state control arm.
//!
//! Sweep mode and output format come from `XCC_FULL_SWEEP` / `XCC_OUTPUT`
//! (see `xcc_framework::sweep`).

fn main() {
    xcc_bench::run_and_print("chain_halt");
}
