//! Fleet-topology scenario `dedicated_scaling` (see the registry entry):
//! one shared relayer process serving N channels (the paper's per-process
//! ~90 TFPS cap, flat in N) vs a dedicated fleet of one relayer process per
//! channel, each with its own RPC lanes, which scales with N.
//!
//! Sweep mode and output format come from `XCC_FULL_SWEEP` / `XCC_OUTPUT`
//! (see `xcc_framework::sweep`).

fn main() {
    xcc_bench::run_and_print("dedicated_scaling");
}
