//! Declarative relayer strategies: the serde-able configuration behind the
//! pluggable pipeline stages.
//!
//! The paper measures one fixed relayer pipeline — Hermes' WebSocket
//! subscription, sequential chunked RPC data pulls, eager per-block
//! submission and no coordination between instances — and shows that this
//! pipeline, not consensus, caps cross-chain throughput (Figs. 8 vs 6) and
//! dominates completion latency (Fig. 12). A [`RelayerStrategy`] names each
//! of those four pipeline decisions so the "what if?" counterfactuals become
//! ordinary experiment configuration:
//!
//! | Stage | Paper behaviour | Counterfactuals |
//! |---|---|---|
//! | [`EventSourceKind`] | WebSocket push (16 MiB frames) | RPC polling |
//! | [`FetchStrategy`] | sequential chunked pulls | batched, parallel |
//! | [`SubmissionMode`] | eager per-block | windowed, adaptive |
//! | [`CoordinationMode`] | none (redundant work) | partition, leases |
//! | [`SequenceTracking`] | committed-state resync (loses straddled windows, §V) | mempool-aware |
//!
//! A strategy is plain serde data embedded in the framework's
//! `DeploymentConfig`, so it round-trips through JSON, sweeps like any other
//! experiment axis and is selectable from `ExperimentSpec`:
//!
//! ```rust
//! use xcc_relayer::strategy::{FetchStrategy, RelayerStrategy};
//!
//! let strategy = RelayerStrategy::batched_pulls();
//! assert_eq!(strategy.fetcher, FetchStrategy::Batched);
//! assert_ne!(strategy, RelayerStrategy::default());
//! assert_eq!(strategy.label(), "batched");
//! ```

use serde::{de_field, de_field_or_default, Deserialize, Error, Serialize, Value};

/// How a relayer learns about newly committed blocks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum EventSourceKind {
    /// Tendermint's WebSocket `NewBlock` subscription, subject to the 16 MiB
    /// frame limit the paper's §V deployment challenge runs into.
    #[default]
    WebSocket,
    /// Poll each block's transaction results over the RPC endpoint instead:
    /// immune to the frame limit, but every block pays a queued RPC query.
    Polling,
}

/// How the relayer pulls packet data and proofs back out of a chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum FetchStrategy {
    /// One chunked query per source transaction, issued back to back — the
    /// Hermes behaviour whose sequential round trips make up ~69% of
    /// completion latency in Fig. 12.
    #[default]
    Sequential,
    /// One query for the whole batch: the per-block scan cost is paid once
    /// (plus a per-item pagination surcharge) instead of once per chunk.
    Batched,
    /// The sequential chunked queries, but issued concurrently: the RPC
    /// server still serves them one at a time, yet queueing and network
    /// round trips overlap instead of accumulating.
    Parallel,
}

/// When the relayer turns collected packets into receive transactions.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SubmissionMode {
    /// Relay every block's packets immediately (the paper's behaviour).
    #[default]
    Eager,
    /// Hold packets for a fixed window of source blocks and relay them as
    /// one larger batch — the relayer-side generalization of the Fig. 13
    /// submission strategies.
    Windowed {
        /// How many pending source blocks to accumulate before relaying.
        blocks: u64,
    },
    /// Relay as soon as a full transaction's worth of packets is pending, or
    /// when the window expires — batching under load, eager when idle.
    Adaptive {
        /// The longest a pending packet may wait, in source blocks.
        max_window_blocks: u64,
    },
}

/// How multiple relayer instances divide the channel's work.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum CoordinationMode {
    /// Every instance relays everything it observes. With more than one
    /// relayer this loses work to redundant messages, as in Figs. 9 and 11.
    #[default]
    None,
    /// Static partitioning: the instance whose index equals
    /// `sequence % instance_count` relays a packet, everyone else ignores it.
    SequencePartition,
    /// Rotating leadership: for each lease of source blocks exactly one
    /// instance relays, so a slow leader is replaced at the next lease.
    LeaderLease {
        /// Length of one leadership lease in source blocks.
        lease_blocks: u64,
    },
}

/// How the relayer keeps its account sequences in step with each chain —
/// the strategy arm behind the paper's §V "account sequence mismatch"
/// deployment challenge.
///
/// The relayer signs every transaction with a locally tracked sequence.
/// While its transactions sit in a chain's mempool across a block commit
/// (a *straddled* commit), the chain's `CheckTx` state resets to the
/// committed sequence, so the relayer's continuation is rejected and the
/// naive recovery burns an entire submission window on a duplicate
/// sequence. The two arms differ exactly in that recovery:
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum SequenceTracking {
    /// On a mismatch, re-query the chain's *committed* sequence and retry
    /// once with it — Hermes' behaviour, and the paper's. Across a straddled
    /// commit the committed sequence is stale (the relayer's own
    /// transactions still occupy it in the mempool), so the retry collides
    /// on-chain and the window's messages are lost.
    #[default]
    Resync,
    /// Track the check-state sequence locally and reconcile against the
    /// mempool-aware `account_sequence_unconfirmed` query before flushing:
    /// when the check state was reset under the relayer's in-flight window,
    /// hold the batch for the next block instead of burning it on a
    /// duplicate sequence. Straddled commits delay a flush by one block but
    /// never lose it, and broadcast failures drop to zero.
    MempoolAware,
}

impl SequenceTracking {
    /// A short label for sweep-point names and report rows.
    pub fn label(&self) -> &'static str {
        match self {
            SequenceTracking::Resync => "resync",
            SequenceTracking::MempoolAware => "mempool",
        }
    }
}

/// How one relayer instance divides its attention between the channels of a
/// multi-channel deployment (the per-channel scheduling layer).
///
/// With a single channel every policy behaves identically; the policies only
/// diverge when `DeploymentConfig::channel_count > 1` (the
/// `multi_channel_scaling` and `channel_contention` registry scenarios).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum ChannelPolicy {
    /// Every instance serves every channel, rotating which channel's batch
    /// is relayed first each block so no channel is systematically starved.
    #[default]
    FairShare,
    /// Every instance serves every channel in fixed channel-index order:
    /// channel 0's batch always goes out first, lower-priority channels wait
    /// behind it on the shared packet worker.
    Priority,
    /// A dedicated relayer process per channel: the deployment expands into
    /// one relayer process for every channel (times `relayer_count`
    /// redundant replicas per channel), each pinned to its channel with its
    /// own RPC lanes — real fleet topology, not a rotation order. Hand-built
    /// relayers without an explicit channel assignment fall back to the
    /// modular `channel_index % relayer_count` mapping.
    Dedicated,
}

impl ChannelPolicy {
    /// A short label for sweep-point names and report rows.
    pub fn label(&self) -> &'static str {
        match self {
            ChannelPolicy::FairShare => "fair-share",
            ChannelPolicy::Priority => "priority",
            ChannelPolicy::Dedicated => "dedicated",
        }
    }
}

/// The full, serializable strategy: one choice per pipeline stage, the
/// channel scheduling policy, and the deployment-limit knobs.
///
/// `RelayerStrategy::default()` reproduces the paper's Hermes-like pipeline
/// bit for bit; the named constructors build the counterfactual strategies
/// the registry's `*_batched_pulls` / `*_parallel_fetch` / `*_coordinated` /
/// `*_adaptive_submission` scenarios probe, and the
/// [`frame_limit`](RelayerStrategy::frame_limit) /
/// [`packet_clearing`](RelayerStrategy::packet_clearing) knobs turn the §V
/// deployment limits into sweepable configuration (`frame_limit_sweep`).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct RelayerStrategy {
    /// Block event delivery.
    pub event_source: EventSourceKind,
    /// Packet data / proof retrieval.
    pub fetcher: FetchStrategy,
    /// Receive-path submission batching.
    pub submission: SubmissionMode,
    /// Work division between relayer instances.
    pub coordination: CoordinationMode,
    /// Channel scheduling across a multi-channel deployment.
    pub channel_policy: ChannelPolicy,
    /// Maximum WebSocket frame size in bytes for the event subscription;
    /// `0` means Tendermint's 16 MiB default. Only meaningful with the
    /// [`EventSourceKind::WebSocket`] event source.
    pub ws_frame_limit_bytes: u64,
    /// Every how many source blocks the relayer scans chain state for
    /// committed-but-unrelayed packets and clears them (Hermes'
    /// `clear_interval`); `0` disables clearing, as in the paper's
    /// deployment. Clearing is what rescues transfers stranded by an
    /// oversized WebSocket frame.
    pub packet_clear_interval: u64,
    /// Account-sequence management across straddled commits (§V's sequence
    /// race). The default reproduces Hermes' lossy committed-state resync.
    pub sequence_tracking: SequenceTracking,
}

// Hand-written serde impls (instead of the derive) so that strategy JSON
// written before the channel-policy / deployment-limit knobs existed — the
// golden fixtures included — still parses: missing fields fall back to the
// paper-default behaviour.
impl Serialize for RelayerStrategy {
    fn to_value(&self) -> Value {
        Value::Map(vec![
            ("event_source".into(), self.event_source.to_value()),
            ("fetcher".into(), self.fetcher.to_value()),
            ("submission".into(), self.submission.to_value()),
            ("coordination".into(), self.coordination.to_value()),
            ("channel_policy".into(), self.channel_policy.to_value()),
            (
                "ws_frame_limit_bytes".into(),
                self.ws_frame_limit_bytes.to_value(),
            ),
            (
                "packet_clear_interval".into(),
                self.packet_clear_interval.to_value(),
            ),
            (
                "sequence_tracking".into(),
                self.sequence_tracking.to_value(),
            ),
        ])
    }
}

impl Deserialize for RelayerStrategy {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let map = v
            .as_map()
            .ok_or_else(|| Error::custom("expected object for RelayerStrategy"))?;
        Ok(RelayerStrategy {
            event_source: de_field(map, "event_source")?,
            fetcher: de_field(map, "fetcher")?,
            submission: de_field(map, "submission")?,
            coordination: de_field(map, "coordination")?,
            channel_policy: de_field_or_default(map, "channel_policy")?,
            ws_frame_limit_bytes: de_field_or_default(map, "ws_frame_limit_bytes")?,
            packet_clear_interval: de_field_or_default(map, "packet_clear_interval")?,
            sequence_tracking: de_field_or_default(map, "sequence_tracking")?,
        })
    }
}

impl RelayerStrategy {
    /// The paper's pipeline: WebSocket events, sequential pulls, eager
    /// submission, no coordination. Identical to `Default::default()`.
    pub fn paper_default() -> Self {
        RelayerStrategy::default()
    }

    /// The paper pipeline with the data pulls batched into one query.
    pub fn batched_pulls() -> Self {
        RelayerStrategy {
            fetcher: FetchStrategy::Batched,
            ..RelayerStrategy::default()
        }
    }

    /// The paper pipeline with the chunked data pulls issued concurrently.
    pub fn parallel_fetch() -> Self {
        RelayerStrategy {
            fetcher: FetchStrategy::Parallel,
            ..RelayerStrategy::default()
        }
    }

    /// The paper pipeline with sequence-partitioned relayer instances.
    pub fn coordinated() -> Self {
        RelayerStrategy {
            coordination: CoordinationMode::SequencePartition,
            ..RelayerStrategy::default()
        }
    }

    /// The paper pipeline with rotating per-lease leadership.
    pub fn leader_lease(lease_blocks: u64) -> Self {
        RelayerStrategy {
            coordination: CoordinationMode::LeaderLease {
                lease_blocks: lease_blocks.max(1),
            },
            ..RelayerStrategy::default()
        }
    }

    /// The paper pipeline with backlog-adaptive submission batching.
    pub fn adaptive_submission(max_window_blocks: u64) -> Self {
        RelayerStrategy {
            submission: SubmissionMode::Adaptive {
                max_window_blocks: max_window_blocks.max(1),
            },
            ..RelayerStrategy::default()
        }
    }

    /// The paper pipeline with RPC polling instead of the WebSocket
    /// subscription (no 16 MiB frame limit).
    pub fn polling_events() -> Self {
        RelayerStrategy {
            event_source: EventSourceKind::Polling,
            ..RelayerStrategy::default()
        }
    }

    /// The paper pipeline with the given channel scheduling policy (only
    /// meaningful in multi-channel deployments).
    pub fn with_channel_policy(policy: ChannelPolicy) -> Self {
        RelayerStrategy {
            channel_policy: policy,
            ..RelayerStrategy::default()
        }
    }

    /// Returns this strategy with the WebSocket frame limit set to `bytes`
    /// (`0` restores Tendermint's 16 MiB default). This is the §V deployment
    /// limit as a sweepable knob — see the `frame_limit_sweep` scenario.
    pub fn frame_limit(mut self, bytes: u64) -> Self {
        self.ws_frame_limit_bytes = bytes;
        self
    }

    /// Returns this strategy with a packet-clear scan every `blocks` source
    /// blocks (`0` disables clearing, the paper's deployment).
    pub fn packet_clearing(mut self, blocks: u64) -> Self {
        self.packet_clear_interval = blocks;
        self
    }

    /// Returns this strategy with the given account-sequence tracking mode
    /// ([`SequenceTracking::Resync`] restores the paper's lossy behaviour).
    pub fn sequence_tracking(mut self, tracking: SequenceTracking) -> Self {
        self.sequence_tracking = tracking;
        self
    }

    /// The paper pipeline with mempool-aware sequence tracking: straddled
    /// destination commits delay a flush instead of losing it (see the
    /// `sequence_race` registry scenario).
    pub fn mempool_sequences() -> Self {
        RelayerStrategy {
            sequence_tracking: SequenceTracking::MempoolAware,
            ..RelayerStrategy::default()
        }
    }

    /// A short label for sweep-point names and report rows: the non-default
    /// stage choices joined by `+`, or `"default"`.
    pub fn label(&self) -> String {
        let mut parts: Vec<String> = Vec::new();
        if self.event_source == EventSourceKind::Polling {
            parts.push("polling".to_string());
        }
        match self.fetcher {
            FetchStrategy::Sequential => {}
            FetchStrategy::Batched => parts.push("batched".to_string()),
            FetchStrategy::Parallel => parts.push("parallel".to_string()),
        }
        match self.submission {
            SubmissionMode::Eager => {}
            SubmissionMode::Windowed { .. } => parts.push("windowed".to_string()),
            SubmissionMode::Adaptive { .. } => parts.push("adaptive".to_string()),
        }
        match self.coordination {
            CoordinationMode::None => {}
            CoordinationMode::SequencePartition => parts.push("partitioned".to_string()),
            CoordinationMode::LeaderLease { .. } => parts.push("leased".to_string()),
        }
        match self.channel_policy {
            ChannelPolicy::FairShare => {}
            ChannelPolicy::Priority => parts.push("priority".to_string()),
            ChannelPolicy::Dedicated => parts.push("dedicated".to_string()),
        }
        if self.ws_frame_limit_bytes != 0 {
            parts.push(format!("frame{}", self.ws_frame_limit_bytes));
        }
        if self.packet_clear_interval != 0 {
            parts.push(format!("clear{}", self.packet_clear_interval));
        }
        if self.sequence_tracking == SequenceTracking::MempoolAware {
            parts.push("mempool-seq".to_string());
        }
        if parts.is_empty() {
            "default".to_string()
        } else {
            parts.join("+")
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_the_paper_pipeline() {
        let s = RelayerStrategy::default();
        assert_eq!(s, RelayerStrategy::paper_default());
        assert_eq!(s.event_source, EventSourceKind::WebSocket);
        assert_eq!(s.fetcher, FetchStrategy::Sequential);
        assert_eq!(s.submission, SubmissionMode::Eager);
        assert_eq!(s.coordination, CoordinationMode::None);
        assert_eq!(s.label(), "default");
    }

    #[test]
    fn constructors_change_exactly_one_stage() {
        assert_eq!(
            RelayerStrategy::batched_pulls().fetcher,
            FetchStrategy::Batched
        );
        assert_eq!(
            RelayerStrategy::parallel_fetch().fetcher,
            FetchStrategy::Parallel
        );
        assert_eq!(
            RelayerStrategy::coordinated().coordination,
            CoordinationMode::SequencePartition
        );
        assert_eq!(
            RelayerStrategy::leader_lease(0).coordination,
            CoordinationMode::LeaderLease { lease_blocks: 1 }
        );
        assert_eq!(
            RelayerStrategy::adaptive_submission(4).submission,
            SubmissionMode::Adaptive {
                max_window_blocks: 4
            }
        );
        assert_eq!(
            RelayerStrategy::polling_events().event_source,
            EventSourceKind::Polling
        );
    }

    #[test]
    fn labels_compose_non_default_stages() {
        let s = RelayerStrategy {
            event_source: EventSourceKind::Polling,
            fetcher: FetchStrategy::Batched,
            submission: SubmissionMode::Windowed { blocks: 2 },
            coordination: CoordinationMode::SequencePartition,
            ..RelayerStrategy::default()
        };
        assert_eq!(s.label(), "polling+batched+windowed+partitioned");
        assert_eq!(
            RelayerStrategy::with_channel_policy(ChannelPolicy::Dedicated).label(),
            "dedicated"
        );
        assert_eq!(
            RelayerStrategy::default()
                .frame_limit(1 << 20)
                .packet_clearing(5)
                .label(),
            "frame1048576+clear5"
        );
    }

    #[test]
    fn strategies_round_trip_through_the_serde_shim() {
        for s in [
            RelayerStrategy::default(),
            RelayerStrategy::batched_pulls(),
            RelayerStrategy::parallel_fetch(),
            RelayerStrategy::coordinated(),
            RelayerStrategy::leader_lease(8),
            RelayerStrategy::adaptive_submission(4),
            RelayerStrategy::polling_events(),
            RelayerStrategy::with_channel_policy(ChannelPolicy::Priority),
            RelayerStrategy::default()
                .frame_limit(4 << 20)
                .packet_clearing(3),
            RelayerStrategy::mempool_sequences(),
        ] {
            let back = RelayerStrategy::from_value(&s.to_value()).unwrap();
            assert_eq!(back, s);
        }
    }

    #[test]
    fn pre_knob_strategy_json_still_parses_with_default_knobs() {
        // Strategy JSON written before the channel-policy / frame-limit /
        // clear-interval fields existed (the golden fixtures) must parse to
        // the paper-default knobs.
        let legacy = Value::Map(vec![
            ("event_source".into(), Value::Str("WebSocket".into())),
            ("fetcher".into(), Value::Str("Sequential".into())),
            ("submission".into(), Value::Str("Eager".into())),
            ("coordination".into(), Value::Str("None".into())),
        ]);
        let parsed = RelayerStrategy::from_value(&legacy).unwrap();
        assert_eq!(parsed, RelayerStrategy::default());
        assert_eq!(parsed.channel_policy, ChannelPolicy::FairShare);
        assert_eq!(parsed.ws_frame_limit_bytes, 0);
        assert_eq!(parsed.packet_clear_interval, 0);
        assert_eq!(parsed.sequence_tracking, SequenceTracking::Resync);
    }

    #[test]
    fn sequence_tracking_knob_builds_and_labels() {
        let s = RelayerStrategy::mempool_sequences();
        assert_eq!(s.sequence_tracking, SequenceTracking::MempoolAware);
        assert_eq!(s.label(), "mempool-seq");
        assert_eq!(
            RelayerStrategy::batched_pulls()
                .sequence_tracking(SequenceTracking::MempoolAware)
                .label(),
            "batched+mempool-seq"
        );
        assert_eq!(SequenceTracking::Resync.label(), "resync");
        assert_eq!(SequenceTracking::MempoolAware.label(), "mempool");
        assert_eq!(
            RelayerStrategy::default().sequence_tracking(SequenceTracking::Resync),
            RelayerStrategy::default()
        );
    }
}
