//! The relayer pipeline stages: trait objects built from a
//! [`crate::strategy::RelayerStrategy`].
//!
//! [`Relayer`](crate::relayer::Relayer) is a thin driver over four stages,
//! mirroring the paper's Fig. 4 decomposition of Hermes:
//!
//! 1. an [`EventSource`] delivers each committed block's events;
//! 2. a [`DataFetcher`] pulls packet data and proofs back out of a chain;
//! 3. a [`SubmissionPolicy`] decides when pending packets are relayed;
//! 4. a [`CoordinationPolicy`] divides work between relayer instances.
//!
//! Every stage works in simulated time: implementations take the instant an
//! operation starts and return the instant its results are in hand, with all
//! RPC traffic priced through the endpoint's FIFO queue model.
//!
//! ```rust
//! use xcc_relayer::stages::CoordinationPolicy;
//! use xcc_relayer::strategy::RelayerStrategy;
//! use xcc_ibc::ids::Sequence;
//!
//! // Build the stage bundle for the partitioned-coordination strategy and
//! // check who relays packet #7 of a two-relayer deployment.
//! let stages = RelayerStrategy::coordinated().build();
//! assert!(!stages.coordination.assigned(0, 2, 10, Sequence::from(7)));
//! assert!(stages.coordination.assigned(1, 2, 10, Sequence::from(7)));
//! ```

use std::collections::BTreeMap;

use xcc_ibc::commitment::CommitmentProof;
use xcc_ibc::ids::{ChannelId, PortId, Sequence};
use xcc_ibc::packet::Acknowledgement;
use xcc_rpc::endpoint::RpcEndpoint;
use xcc_rpc::websocket::WebSocketSubscription;
use xcc_sim::{SimDuration, SimTime};

use crate::strategy::{
    ChannelPolicy, CoordinationMode, EventSourceKind, FetchStrategy, RelayerStrategy,
    SubmissionMode,
};

pub use xcc_rpc::websocket::BlockEventBatch;

// ---------------------------------------------------------------------------
// Event source
// ---------------------------------------------------------------------------

/// Delivers the events of newly committed blocks to the relayer.
///
/// `relayer_delay` is the relayer-side processing overhead (event handling
/// plus the per-instance stagger); implementations add their own transport
/// delay and return the simulated instant the batch reaches the packet
/// worker.
///
/// The `websocket_limit` and `frame_limit_sweep` registry scenarios exercise
/// this stage's failure mode — the configured frame limit comes from
/// [`RelayerStrategy::frame_limit`],
/// and [`RelayerStrategy::polling_events`]
/// swaps in the limit-free polling implementation.
///
/// ```rust
/// use xcc_chain::chain::Chain;
/// use xcc_chain::genesis::GenesisConfig;
/// use xcc_relayer::stages::{EventSource, WebSocketEventSource};
/// use xcc_rpc::cost::RpcCostModel;
/// use xcc_rpc::endpoint::RpcEndpoint;
/// use xcc_sim::{DetRng, LatencyModel, SimDuration, SimTime};
///
/// let chain = Chain::new(GenesisConfig::new("chain-a")).into_shared();
/// chain.borrow_mut().produce_block(SimTime::from_secs(5));
/// let mut rpc = RpcEndpoint::new(
///     chain,
///     RpcCostModel::default(),
///     LatencyModel::Zero,
///     DetRng::new(1),
/// );
///
/// let mut source = WebSocketEventSource::default();
/// let commit = SimTime::from_secs(5);
/// let (at, batch) = source.collect(&mut rpc, 1, commit, SimDuration::from_millis(10));
/// assert!(at > commit, "delivery adds transport + processing delay");
/// assert_eq!(batch.unwrap().height, 1);
/// ```
pub trait EventSource {
    /// Collects the events of the block at `height`, committed at
    /// `commit_time`. Returns the delivery instant together with the batch,
    /// or with the transport error message (e.g. Hermes' "Failed to collect
    /// events" on an oversized WebSocket frame).
    fn collect(
        &mut self,
        rpc: &mut RpcEndpoint,
        height: u64,
        commit_time: SimTime,
        relayer_delay: SimDuration,
    ) -> (SimTime, Result<BlockEventBatch, String>);

    /// A short name for reports and debugging.
    fn kind(&self) -> &'static str;
}

/// The paper's event path: a per-relayer WebSocket `NewBlock` subscription,
/// free of RPC-queue cost but subject to the 16 MiB frame limit (§V).
#[derive(Debug, Default)]
pub struct WebSocketEventSource {
    subscription: WebSocketSubscription,
}

impl WebSocketEventSource {
    /// A subscription with an explicit frame limit (tests and §V scenarios).
    pub fn with_frame_limit(max_frame_bytes: usize) -> Self {
        WebSocketEventSource {
            subscription: WebSocketSubscription::new(max_frame_bytes),
        }
    }
}

impl EventSource for WebSocketEventSource {
    fn collect(
        &mut self,
        rpc: &mut RpcEndpoint,
        height: u64,
        commit_time: SimTime,
        relayer_delay: SimDuration,
    ) -> (SimTime, Result<BlockEventBatch, String>) {
        let at = commit_time + self.subscription.delivery_overhead() + relayer_delay;
        let result = self
            .subscription
            .collect_block_events(rpc, height)
            .map_err(|e| e.to_string());
        (at, result)
    }

    fn kind(&self) -> &'static str {
        "websocket"
    }
}

/// Polls each block's transaction results over the RPC endpoint instead of
/// subscribing: immune to the frame limit, but every block pays a queued
/// `block_results` query whose response time defers event handling.
#[derive(Debug, Default)]
pub struct PollingEventSource;

impl EventSource for PollingEventSource {
    fn collect(
        &mut self,
        rpc: &mut RpcEndpoint,
        height: u64,
        commit_time: SimTime,
        relayer_delay: SimDuration,
    ) -> (SimTime, Result<BlockEventBatch, String>) {
        let resp = rpc.block_tx_results(commit_time + relayer_delay, height);
        let payload_bytes = resp.response_bytes;
        let tx_events = std::rc::Rc::new(
            resp.value
                .into_iter()
                .map(|view| (view.hash, view.code, view.events))
                .collect::<Vec<_>>(),
        );
        (
            resp.ready_at,
            Ok(BlockEventBatch {
                height,
                tx_events,
                payload_bytes,
            }),
        )
    }

    fn kind(&self) -> &'static str {
        "polling"
    }
}

// ---------------------------------------------------------------------------
// Data fetcher
// ---------------------------------------------------------------------------

/// The result of pulling packet commitments for a batch of sequences.
#[derive(Debug, Clone)]
pub struct FetchedPackets {
    /// Commitment proof per packet sequence (missing entries were not found
    /// on chain and are skipped by the build step, as in Hermes).
    pub proofs: BTreeMap<u64, CommitmentProof>,
    /// When each requested sequence's data was in the relayer's hands; the
    /// driver stamps the `TransferDataPull` telemetry step with these.
    pub pull_times: Vec<(Sequence, SimTime)>,
    /// When the last response arrived: the fetch stage's completion time.
    pub done_at: SimTime,
}

/// The result of pulling acknowledgements for a batch of sequences.
#[derive(Debug, Clone)]
pub struct FetchedAcks {
    /// Acknowledgement and proof per packet sequence.
    pub acks: BTreeMap<u64, (Acknowledgement, CommitmentProof)>,
    /// When each requested sequence's data was in the relayer's hands
    /// (stamps the `RecvDataPull` telemetry step).
    pub pull_times: Vec<(Sequence, SimTime)>,
    /// When the last response arrived.
    pub done_at: SimTime,
}

/// Pulls packet data and proofs out of a chain's RPC endpoint — the stage
/// the paper measures as ~69% of completion latency (Fig. 12).
///
/// The `fig8_batched_pulls` and `fig12_parallel_fetch` registry scenarios
/// exercise the non-default fetchers, built from
/// [`RelayerStrategy::batched_pulls`]
/// and
/// [`RelayerStrategy::parallel_fetch`].
///
/// ```rust
/// use xcc_chain::chain::Chain;
/// use xcc_chain::genesis::GenesisConfig;
/// use xcc_ibc::ids::{ChannelId, PortId, Sequence};
/// use xcc_relayer::stages::{DataFetcher, ParallelFetcher, SequentialFetcher};
/// use xcc_rpc::cost::RpcCostModel;
/// use xcc_rpc::endpoint::RpcEndpoint;
/// use xcc_sim::{DetRng, LatencyModel, SimTime};
///
/// let make_rpc = || {
///     let chain = Chain::new(GenesisConfig::new("chain-a")).into_shared();
///     chain.borrow_mut().produce_block(SimTime::from_secs(5));
///     RpcEndpoint::new(
///         chain,
///         RpcCostModel::default(),
///         LatencyModel::constant_rtt_ms(200),
///         DetRng::new(1),
///     )
/// };
/// let seqs: Vec<Sequence> = (1..=250).map(Sequence::from).collect();
/// let (port, channel) = (PortId::transfer(), ChannelId::with_index(0));
///
/// // Three 100-packet chunks: issued back to back vs all at once.
/// let sequential = SequentialFetcher.fetch_packet_data(
///     &mut make_rpc(), SimTime::ZERO, 1, &port, &channel, &seqs, 100);
/// let parallel = ParallelFetcher.fetch_packet_data(
///     &mut make_rpc(), SimTime::ZERO, 1, &port, &channel, &seqs, 100);
/// assert!(parallel.done_at < sequential.done_at, "overlap wins round trips");
/// ```
pub trait DataFetcher {
    /// Fetches the packets' commitment proofs from the **source** chain,
    /// priced against the block at `height`.
    #[allow(clippy::too_many_arguments)]
    fn fetch_packet_data(
        &self,
        rpc: &mut RpcEndpoint,
        start: SimTime,
        height: u64,
        port: &PortId,
        channel: &ChannelId,
        sequences: &[Sequence],
        chunk_size: usize,
    ) -> FetchedPackets;

    /// Fetches the packets' acknowledgements from the **destination** chain,
    /// priced against the (recv-heavy) block at `height`.
    #[allow(clippy::too_many_arguments)]
    fn fetch_ack_data(
        &self,
        rpc: &mut RpcEndpoint,
        start: SimTime,
        height: u64,
        port: &PortId,
        channel: &ChannelId,
        sequences: &[Sequence],
        chunk_size: usize,
    ) -> FetchedAcks;

    /// A short name for reports and debugging.
    fn kind(&self) -> &'static str;
}

/// Shared body of the chunked fetchers: one `pull_*` query per
/// `chunk_size` sequences. `overlap: false` issues each chunk only after the
/// previous response arrived (Hermes' sequential behaviour); `overlap: true`
/// issues every chunk at the stage start, so the single-server RPC queue
/// still serializes service times but queueing overlaps the network round
/// trips instead of adding to them.
#[allow(clippy::too_many_arguments)]
fn chunked_packet_fetch(
    rpc: &mut RpcEndpoint,
    start: SimTime,
    height: u64,
    port: &PortId,
    channel: &ChannelId,
    sequences: &[Sequence],
    chunk_size: usize,
    overlap: bool,
) -> FetchedPackets {
    let mut issue_at = start;
    let mut done_at = start;
    let mut proofs = BTreeMap::new();
    let mut pull_times = Vec::with_capacity(sequences.len());
    for chunk in sequences.chunks(chunk_size.max(1)) {
        let pull = rpc.pull_packet_data(issue_at, height, port, channel, chunk);
        for (packet, proof) in pull.value {
            proofs.insert(packet.sequence.value(), proof);
        }
        for seq in chunk {
            pull_times.push((*seq, pull.ready_at));
        }
        done_at = done_at.max(pull.ready_at);
        if !overlap {
            issue_at = pull.ready_at;
        }
    }
    FetchedPackets {
        proofs,
        pull_times,
        done_at,
    }
}

/// The acknowledgement-side twin of `chunked_packet_fetch`.
#[allow(clippy::too_many_arguments)]
fn chunked_ack_fetch(
    rpc: &mut RpcEndpoint,
    start: SimTime,
    height: u64,
    port: &PortId,
    channel: &ChannelId,
    sequences: &[Sequence],
    chunk_size: usize,
    overlap: bool,
) -> FetchedAcks {
    let mut issue_at = start;
    let mut done_at = start;
    let mut acks = BTreeMap::new();
    let mut pull_times = Vec::with_capacity(sequences.len());
    for chunk in sequences.chunks(chunk_size.max(1)) {
        let pull = rpc.pull_ack_data(issue_at, height, port, channel, chunk);
        for (seq, ack, proof) in pull.value {
            acks.insert(seq.value(), (ack, proof));
        }
        for seq in chunk {
            pull_times.push((*seq, pull.ready_at));
        }
        done_at = done_at.max(pull.ready_at);
        if !overlap {
            issue_at = pull.ready_at;
        }
    }
    FetchedAcks {
        acks,
        pull_times,
        done_at,
    }
}

/// Hermes' behaviour: one chunked query per source transaction, each issued
/// only after the previous response arrived, each paying the full per-block
/// scan cost.
#[derive(Debug, Default)]
pub struct SequentialFetcher;

impl DataFetcher for SequentialFetcher {
    fn fetch_packet_data(
        &self,
        rpc: &mut RpcEndpoint,
        start: SimTime,
        height: u64,
        port: &PortId,
        channel: &ChannelId,
        sequences: &[Sequence],
        chunk_size: usize,
    ) -> FetchedPackets {
        chunked_packet_fetch(
            rpc, start, height, port, channel, sequences, chunk_size, false,
        )
    }

    fn fetch_ack_data(
        &self,
        rpc: &mut RpcEndpoint,
        start: SimTime,
        height: u64,
        port: &PortId,
        channel: &ChannelId,
        sequences: &[Sequence],
        chunk_size: usize,
    ) -> FetchedAcks {
        chunked_ack_fetch(
            rpc, start, height, port, channel, sequences, chunk_size, false,
        )
    }

    fn kind(&self) -> &'static str {
        "sequential"
    }
}

/// The sequential chunked queries issued concurrently: every chunk's
/// request enters the RPC queue at the stage's start, so the single-server
/// queue still serializes service times but queueing overlaps the network
/// round trips instead of adding to them.
#[derive(Debug, Default)]
pub struct ParallelFetcher;

impl DataFetcher for ParallelFetcher {
    fn fetch_packet_data(
        &self,
        rpc: &mut RpcEndpoint,
        start: SimTime,
        height: u64,
        port: &PortId,
        channel: &ChannelId,
        sequences: &[Sequence],
        chunk_size: usize,
    ) -> FetchedPackets {
        chunked_packet_fetch(
            rpc, start, height, port, channel, sequences, chunk_size, true,
        )
    }

    fn fetch_ack_data(
        &self,
        rpc: &mut RpcEndpoint,
        start: SimTime,
        height: u64,
        port: &PortId,
        channel: &ChannelId,
        sequences: &[Sequence],
        chunk_size: usize,
    ) -> FetchedAcks {
        chunked_ack_fetch(
            rpc, start, height, port, channel, sequences, chunk_size, true,
        )
    }

    fn kind(&self) -> &'static str {
        "parallel"
    }
}

/// One query for the whole batch: the block scan is paid once plus a
/// per-item surcharge (`RpcCostModel::batched_pull_per_item`).
#[derive(Debug, Default)]
pub struct BatchedFetcher;

impl DataFetcher for BatchedFetcher {
    fn fetch_packet_data(
        &self,
        rpc: &mut RpcEndpoint,
        start: SimTime,
        height: u64,
        port: &PortId,
        channel: &ChannelId,
        sequences: &[Sequence],
        _chunk_size: usize,
    ) -> FetchedPackets {
        let pull = rpc.pull_packet_data_batched(start, height, port, channel, sequences);
        let done_at = pull.ready_at;
        let proofs = pull
            .value
            .into_iter()
            .map(|(packet, proof)| (packet.sequence.value(), proof))
            .collect();
        FetchedPackets {
            proofs,
            pull_times: sequences.iter().map(|seq| (*seq, done_at)).collect(),
            done_at,
        }
    }

    fn fetch_ack_data(
        &self,
        rpc: &mut RpcEndpoint,
        start: SimTime,
        height: u64,
        port: &PortId,
        channel: &ChannelId,
        sequences: &[Sequence],
        _chunk_size: usize,
    ) -> FetchedAcks {
        let pull = rpc.pull_ack_data_batched(start, height, port, channel, sequences);
        let done_at = pull.ready_at;
        let acks = pull
            .value
            .into_iter()
            .map(|(seq, ack, proof)| (seq.value(), (ack, proof)))
            .collect();
        FetchedAcks {
            acks,
            pull_times: sequences.iter().map(|seq| (*seq, done_at)).collect(),
            done_at,
        }
    }

    fn kind(&self) -> &'static str {
        "batched"
    }
}

// ---------------------------------------------------------------------------
// Submission policy
// ---------------------------------------------------------------------------

/// Decides, once per source block with pending packets, whether the pending
/// receive batch is relayed now or held for a larger batch.
///
/// The `fig13_adaptive_submission` registry scenario exercises the
/// non-default policy, built from
/// [`RelayerStrategy::adaptive_submission`].
///
/// ```rust
/// use xcc_relayer::stages::{SubmissionPolicy, WindowedSubmission};
///
/// // A two-block window holds the first block's packets for one more block.
/// let mut policy = WindowedSubmission::new(2);
/// assert!(!policy.should_flush(40, 100));
/// assert!(policy.should_flush(80, 100));
/// ```
pub trait SubmissionPolicy {
    /// `pending_msgs` packets are waiting after the current block's events;
    /// return `true` to relay them now.
    fn should_flush(&mut self, pending_msgs: usize, max_msgs_per_tx: usize) -> bool;

    /// A short name for reports and debugging.
    fn kind(&self) -> &'static str;
}

/// Relay every block's packets immediately (the paper's behaviour).
#[derive(Debug, Default)]
pub struct EagerSubmission;

impl SubmissionPolicy for EagerSubmission {
    fn should_flush(&mut self, _pending_msgs: usize, _max_msgs_per_tx: usize) -> bool {
        true
    }

    fn kind(&self) -> &'static str {
        "eager"
    }
}

/// Hold pending packets for a fixed number of source blocks, then relay them
/// as one batch.
#[derive(Debug)]
pub struct WindowedSubmission {
    window_blocks: u64,
    blocks_waited: u64,
}

impl WindowedSubmission {
    /// A policy flushing every `window_blocks` pending source blocks.
    pub fn new(window_blocks: u64) -> Self {
        WindowedSubmission {
            window_blocks: window_blocks.max(1),
            blocks_waited: 0,
        }
    }
}

impl SubmissionPolicy for WindowedSubmission {
    fn should_flush(&mut self, _pending_msgs: usize, _max_msgs_per_tx: usize) -> bool {
        self.blocks_waited += 1;
        if self.blocks_waited >= self.window_blocks {
            self.blocks_waited = 0;
            true
        } else {
            false
        }
    }

    fn kind(&self) -> &'static str {
        "windowed"
    }
}

/// Flush as soon as a full transaction's worth of packets is pending, or
/// when the window expires — batches under load, stays eager when idle.
#[derive(Debug)]
pub struct AdaptiveSubmission {
    max_window_blocks: u64,
    blocks_waited: u64,
}

impl AdaptiveSubmission {
    /// A policy waiting at most `max_window_blocks` pending source blocks.
    pub fn new(max_window_blocks: u64) -> Self {
        AdaptiveSubmission {
            max_window_blocks: max_window_blocks.max(1),
            blocks_waited: 0,
        }
    }
}

impl SubmissionPolicy for AdaptiveSubmission {
    fn should_flush(&mut self, pending_msgs: usize, max_msgs_per_tx: usize) -> bool {
        self.blocks_waited += 1;
        if pending_msgs >= max_msgs_per_tx.max(1) || self.blocks_waited >= self.max_window_blocks {
            self.blocks_waited = 0;
            true
        } else {
            false
        }
    }

    fn kind(&self) -> &'static str {
        "adaptive"
    }
}

// ---------------------------------------------------------------------------
// Coordination policy
// ---------------------------------------------------------------------------

/// Divides the channel's packets between relayer instances.
///
/// The `fig11_coordinated` registry scenario exercises the non-default
/// policies, built from
/// [`RelayerStrategy::coordinated`]
/// and
/// [`RelayerStrategy::leader_lease`].
///
/// ```rust
/// use xcc_ibc::ids::Sequence;
/// use xcc_relayer::stages::{CoordinationPolicy, SequencePartitionCoordination};
///
/// // Exactly one of three instances owns each sequence.
/// let policy = SequencePartitionCoordination;
/// let owners: Vec<usize> = (0..3)
///     .filter(|id| policy.assigned(*id, 3, 7, Sequence::from(11)))
///     .collect();
/// assert_eq!(owners, vec![2]);
/// ```
pub trait CoordinationPolicy {
    /// Whether instance `relayer_id` of `relayer_count` is responsible for
    /// relaying `sequence`, observed at source block `src_height`.
    fn assigned(
        &self,
        relayer_id: usize,
        relayer_count: usize,
        src_height: u64,
        sequence: Sequence,
    ) -> bool;

    /// A short name for reports and debugging.
    fn kind(&self) -> &'static str;
}

/// No coordination: every instance relays everything it observes, and with
/// more than one instance the duplicates are rejected on chain or skipped
/// after the unreceived-packet query (Figs. 9 and 11).
#[derive(Debug, Default)]
pub struct NoCoordination;

impl CoordinationPolicy for NoCoordination {
    fn assigned(&self, _id: usize, _count: usize, _height: u64, _sequence: Sequence) -> bool {
        true
    }

    fn kind(&self) -> &'static str {
        "none"
    }
}

/// Static sequence-range partitioning: packet `s` belongs to instance
/// `s % relayer_count`, eliminating redundant messages entirely.
#[derive(Debug, Default)]
pub struct SequencePartitionCoordination;

impl CoordinationPolicy for SequencePartitionCoordination {
    fn assigned(&self, id: usize, count: usize, _height: u64, sequence: Sequence) -> bool {
        count <= 1 || sequence.value() % count as u64 == id as u64
    }

    fn kind(&self) -> &'static str {
        "sequence-partition"
    }
}

/// Rotating leadership: for each `lease_blocks`-long window of source
/// heights exactly one instance relays every packet.
#[derive(Debug)]
pub struct LeaderLeaseCoordination {
    lease_blocks: u64,
}

impl LeaderLeaseCoordination {
    /// A lease rotation every `lease_blocks` source blocks.
    pub fn new(lease_blocks: u64) -> Self {
        LeaderLeaseCoordination {
            lease_blocks: lease_blocks.max(1),
        }
    }
}

impl CoordinationPolicy for LeaderLeaseCoordination {
    fn assigned(&self, id: usize, count: usize, height: u64, _sequence: Sequence) -> bool {
        count <= 1 || (height / self.lease_blocks) % count as u64 == id as u64
    }

    fn kind(&self) -> &'static str {
        "leader-lease"
    }
}

// ---------------------------------------------------------------------------
// Channel scheduler
// ---------------------------------------------------------------------------

/// Divides a relayer instance's attention between the channels of a
/// multi-channel deployment: which channels this instance serves at all, and
/// in which order their pending batches are flushed on the shared packet
/// worker.
///
/// Built from the [`ChannelPolicy`] arm of
/// [`RelayerStrategy`]; the
/// `multi_channel_scaling` and `channel_contention` registry scenarios
/// exercise the non-default policies (see
/// [`RelayerStrategy::with_channel_policy`]).
///
/// ```rust
/// use xcc_relayer::stages::{ChannelScheduler, DedicatedScheduler, FairShareScheduler};
///
/// // Fair share rotates the flush order with the block height...
/// let fair = FairShareScheduler;
/// assert_eq!(fair.flush_order(10, 3), vec![1, 2, 0]);
/// // ...while a dedicated deployment pins channel 2 to instance 0 of 2.
/// let dedicated = DedicatedScheduler;
/// assert!(dedicated.serves(0, 2, 2));
/// assert!(!dedicated.serves(1, 2, 2));
/// ```
pub trait ChannelScheduler {
    /// Whether instance `relayer_id` of `relayer_count` serves the channel
    /// at `channel_index` at all.
    fn serves(&self, relayer_id: usize, relayer_count: usize, channel_index: usize) -> bool;

    /// The order in which this instance flushes the deployment's
    /// `channel_count` channels for the block at `height` (unserved channels
    /// are filtered by the caller via [`serves`](ChannelScheduler::serves)).
    fn flush_order(&self, height: u64, channel_count: usize) -> Vec<usize>;

    /// A short name for reports and debugging.
    fn kind(&self) -> &'static str;
}

/// Every instance serves every channel; the flush order rotates with the
/// block height so no channel is systematically relayed last.
#[derive(Debug, Default)]
pub struct FairShareScheduler;

impl ChannelScheduler for FairShareScheduler {
    fn serves(&self, _id: usize, _count: usize, _channel: usize) -> bool {
        true
    }

    fn flush_order(&self, height: u64, channel_count: usize) -> Vec<usize> {
        let n = channel_count.max(1);
        let start = (height % n as u64) as usize;
        (0..n).map(|i| (start + i) % n).collect()
    }

    fn kind(&self) -> &'static str {
        "fair-share"
    }
}

/// Every instance serves every channel in fixed index order: channel 0's
/// batch always goes out first, lower-priority channels queue behind it.
#[derive(Debug, Default)]
pub struct PriorityScheduler;

impl ChannelScheduler for PriorityScheduler {
    fn serves(&self, _id: usize, _count: usize, _channel: usize) -> bool {
        true
    }

    fn flush_order(&self, _height: u64, channel_count: usize) -> Vec<usize> {
        (0..channel_count.max(1)).collect()
    }

    fn kind(&self) -> &'static str {
        "priority"
    }
}

/// One relayer instance per channel: instance `channel_index %
/// relayer_count` serves the channel, every other instance ignores it.
#[derive(Debug, Default)]
pub struct DedicatedScheduler;

impl ChannelScheduler for DedicatedScheduler {
    fn serves(&self, id: usize, count: usize, channel: usize) -> bool {
        count <= 1 || channel % count == id
    }

    fn flush_order(&self, _height: u64, channel_count: usize) -> Vec<usize> {
        (0..channel_count.max(1)).collect()
    }

    fn kind(&self) -> &'static str {
        "dedicated"
    }
}

// ---------------------------------------------------------------------------
// Stage bundle
// ---------------------------------------------------------------------------

/// The built pipeline: one stage object per decision, owned by one relayer
/// instance.
pub struct Stages {
    /// Event delivery from the source chain.
    pub src_events: Box<dyn EventSource>,
    /// Event delivery from the destination chain.
    pub dst_events: Box<dyn EventSource>,
    /// Packet data / proof retrieval (both directions).
    pub fetcher: Box<dyn DataFetcher>,
    /// Receive-path submission batching.
    pub submission: Box<dyn SubmissionPolicy>,
    /// Work division between instances.
    pub coordination: Box<dyn CoordinationPolicy>,
    /// Channel scheduling across a multi-channel deployment.
    pub scheduler: Box<dyn ChannelScheduler>,
}

impl std::fmt::Debug for Stages {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Stages")
            .field("src_events", &self.src_events.kind())
            .field("dst_events", &self.dst_events.kind())
            .field("fetcher", &self.fetcher.kind())
            .field("submission", &self.submission.kind())
            .field("coordination", &self.coordination.kind())
            .field("scheduler", &self.scheduler.kind())
            .finish()
    }
}

impl RelayerStrategy {
    fn event_source(&self) -> Box<dyn EventSource> {
        match self.event_source {
            EventSourceKind::WebSocket => match self.ws_frame_limit_bytes {
                0 => Box::new(WebSocketEventSource::default()),
                limit => Box::new(WebSocketEventSource::with_frame_limit(limit as usize)),
            },
            EventSourceKind::Polling => Box::new(PollingEventSource),
        }
    }

    /// Instantiates the stage objects this strategy describes.
    pub fn build(&self) -> Stages {
        let fetcher: Box<dyn DataFetcher> = match self.fetcher {
            FetchStrategy::Sequential => Box::new(SequentialFetcher),
            FetchStrategy::Batched => Box::new(BatchedFetcher),
            FetchStrategy::Parallel => Box::new(ParallelFetcher),
        };
        let submission: Box<dyn SubmissionPolicy> = match self.submission {
            SubmissionMode::Eager => Box::new(EagerSubmission),
            SubmissionMode::Windowed { blocks } => Box::new(WindowedSubmission::new(blocks)),
            SubmissionMode::Adaptive { max_window_blocks } => {
                Box::new(AdaptiveSubmission::new(max_window_blocks))
            }
        };
        let coordination: Box<dyn CoordinationPolicy> = match self.coordination {
            CoordinationMode::None => Box::new(NoCoordination),
            CoordinationMode::SequencePartition => Box::new(SequencePartitionCoordination),
            CoordinationMode::LeaderLease { lease_blocks } => {
                Box::new(LeaderLeaseCoordination::new(lease_blocks))
            }
        };
        let scheduler: Box<dyn ChannelScheduler> = match self.channel_policy {
            ChannelPolicy::FairShare => Box::new(FairShareScheduler),
            ChannelPolicy::Priority => Box::new(PriorityScheduler),
            ChannelPolicy::Dedicated => Box::new(DedicatedScheduler),
        };
        Stages {
            src_events: self.event_source(),
            dst_events: self.event_source(),
            fetcher,
            submission,
            coordination,
            scheduler,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_matches_the_strategy_choices() {
        let default = RelayerStrategy::default().build();
        assert_eq!(default.src_events.kind(), "websocket");
        assert_eq!(default.fetcher.kind(), "sequential");
        assert_eq!(default.submission.kind(), "eager");
        assert_eq!(default.coordination.kind(), "none");
        assert_eq!(default.scheduler.kind(), "fair-share");

        let tuned = RelayerStrategy {
            event_source: crate::strategy::EventSourceKind::Polling,
            fetcher: FetchStrategy::Parallel,
            submission: SubmissionMode::Windowed { blocks: 3 },
            coordination: CoordinationMode::LeaderLease { lease_blocks: 5 },
            channel_policy: ChannelPolicy::Dedicated,
            ..RelayerStrategy::default()
        }
        .build();
        assert_eq!(tuned.src_events.kind(), "polling");
        assert_eq!(tuned.fetcher.kind(), "parallel");
        assert_eq!(tuned.submission.kind(), "windowed");
        assert_eq!(tuned.coordination.kind(), "leader-lease");
        assert_eq!(tuned.scheduler.kind(), "dedicated");
        assert!(format!("{tuned:?}").contains("parallel"));
    }

    #[test]
    fn schedulers_rotate_prioritize_and_dedicate() {
        let fair = FairShareScheduler;
        assert_eq!(fair.flush_order(0, 3), vec![0, 1, 2]);
        assert_eq!(fair.flush_order(1, 3), vec![1, 2, 0]);
        assert_eq!(fair.flush_order(5, 3), vec![2, 0, 1]);
        assert!(fair.serves(1, 2, 0));

        let priority = PriorityScheduler;
        for height in [0u64, 3, 17] {
            assert_eq!(priority.flush_order(height, 3), vec![0, 1, 2]);
        }
        assert!(priority.serves(1, 2, 0));

        let dedicated = DedicatedScheduler;
        // Exactly one of N instances owns each channel.
        for channel in 0..4usize {
            let owners = (0..2)
                .filter(|id| dedicated.serves(*id, 2, channel))
                .count();
            assert_eq!(owners, 1);
        }
        // Single-instance deployments serve everything.
        assert!(dedicated.serves(0, 1, 3));
        // Single-channel deployments reduce every policy to the same plan.
        for scheduler in [&fair as &dyn ChannelScheduler, &priority, &dedicated] {
            assert_eq!(scheduler.flush_order(9, 1), vec![0]);
        }
    }

    #[test]
    fn frame_limit_knob_configures_the_event_source() {
        let mut rpc = {
            use xcc_chain::chain::Chain;
            use xcc_chain::coin::Coin;
            use xcc_chain::genesis::GenesisConfig;
            use xcc_chain::msg::Msg;
            use xcc_chain::tx::Tx;
            use xcc_rpc::cost::RpcCostModel;
            use xcc_sim::{DetRng, LatencyModel};
            let chain = Chain::new(GenesisConfig::new("chain-a").with_funded_accounts(
                "user",
                2,
                100_000_000,
            ))
            .into_shared();
            {
                let mut c = chain.borrow_mut();
                let tx = Tx::new(
                    "user-0".into(),
                    0,
                    vec![Msg::BankSend {
                        from: "user-0".into(),
                        to: "user-1".into(),
                        amount: Coin::new("uatom", 1),
                    }],
                    "uatom",
                );
                c.submit_tx(&tx, SimTime::ZERO).unwrap();
                c.produce_block(SimTime::from_secs(5));
            }
            RpcEndpoint::new(
                chain,
                RpcCostModel::default(),
                LatencyModel::Zero,
                DetRng::new(1),
            )
        };
        // A one-byte limit must fail collection where the default succeeds.
        let mut tiny = RelayerStrategy::default().frame_limit(1).build();
        let (_, result) =
            tiny.src_events
                .collect(&mut rpc, 1, SimTime::from_secs(5), SimDuration::ZERO);
        assert!(result.unwrap_err().contains("Failed to collect events"));
        let mut default = RelayerStrategy::default().build();
        let (_, result) =
            default
                .src_events
                .collect(&mut rpc, 1, SimTime::from_secs(5), SimDuration::ZERO);
        assert!(result.is_ok());
    }

    #[test]
    fn eager_always_flushes_and_windowed_counts_blocks() {
        let mut eager = EagerSubmission;
        assert!(eager.should_flush(1, 100));
        assert!(eager.should_flush(0, 100));

        let mut windowed = WindowedSubmission::new(3);
        assert!(!windowed.should_flush(10, 100));
        assert!(!windowed.should_flush(20, 100));
        assert!(windowed.should_flush(30, 100));
        // The counter restarts after a flush.
        assert!(!windowed.should_flush(10, 100));
    }

    #[test]
    fn adaptive_flushes_on_full_tx_or_window_expiry() {
        let mut adaptive = AdaptiveSubmission::new(4);
        assert!(adaptive.should_flush(100, 100), "full tx flushes at once");
        assert!(!adaptive.should_flush(10, 100));
        assert!(!adaptive.should_flush(20, 100));
        assert!(!adaptive.should_flush(30, 100));
        assert!(adaptive.should_flush(30, 100), "window expiry flushes");
    }

    #[test]
    fn partition_and_lease_assign_exactly_one_instance() {
        let partition = SequencePartitionCoordination;
        let lease = LeaderLeaseCoordination::new(4);
        for height in [1u64, 7, 9] {
            for seq in 1u64..=20 {
                let seq = Sequence::from(seq);
                let partition_owners = (0..3)
                    .filter(|id| partition.assigned(*id, 3, height, seq))
                    .count();
                let lease_owners = (0..3)
                    .filter(|id| lease.assigned(*id, 3, height, seq))
                    .count();
                assert_eq!(partition_owners, 1);
                assert_eq!(lease_owners, 1);
            }
        }
        // Single-instance deployments always own everything.
        assert!(partition.assigned(0, 1, 1, Sequence::from(9)));
        assert!(lease.assigned(0, 1, 1, Sequence::from(9)));
        // Leases rotate with height.
        assert!(lease.assigned(0, 2, 0, Sequence::from(1)));
        assert!(lease.assigned(1, 2, 4, Sequence::from(1)));
    }

    #[test]
    fn no_coordination_assigns_everyone() {
        let none = NoCoordination;
        assert!(none.assigned(0, 2, 1, Sequence::from(1)));
        assert!(none.assigned(1, 2, 1, Sequence::from(1)));
    }
}
