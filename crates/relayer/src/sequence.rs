//! Per-chain account-sequence tracking for the relayer's broadcast path.
//!
//! A relayer signs every transaction with a locally tracked sequence. The
//! paper's §V "account sequence mismatch" challenge is what happens when
//! that local view and the chain's `CheckTx` state disagree: across a
//! *straddled* commit — a block that commits while some of the relayer's
//! transactions are still in the mempool — the chain resets its check state
//! to the committed sequence, so the relayer's continuation sequence is
//! suddenly rejected even though it is the right one.
//!
//! A [`SequenceTracker`] owns the local sequence for one chain (one tracker
//! per chain, shared by every channel the relayer serves, so multi-channel
//! deployments cannot race themselves) and implements both arms of
//! [`SequenceTracking`]:
//!
//! * [`SequenceTracking::Resync`] — the tracker is a plain counter; on a
//!   mismatch the relayer re-queries the *committed* sequence and retries
//!   once (Hermes' behaviour, which burns the window across a straddle);
//! * [`SequenceTracking::MempoolAware`] — after every observed block commit
//!   the tracker is *dirty* and must be reconciled against the mempool-aware
//!   [`UnconfirmedSequence`] query before the next broadcast. Reconciling
//!   reports whether `CheckTx` will accept the tracker's next sequence; when
//!   it will not (the check state was reset under the relayer's in-flight
//!   window), the relayer holds the batch for the next block instead of
//!   burning it on a duplicate sequence.

use xcc_rpc::endpoint::UnconfirmedSequence;

use crate::strategy::SequenceTracking;

/// The relayer's local account-sequence state towards one chain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SequenceTracker {
    mode: SequenceTracking,
    next: u64,
    /// Whether a block commit was observed since the last reconcile — only
    /// meaningful (and only set) in mempool-aware mode.
    dirty: bool,
    /// Whether the last reconcile reported a straddle. Chain state cannot
    /// change between two block callbacks of the same block, so a held
    /// verdict is cached until the next observed commit instead of paying
    /// the mempool-scan query again for every batch of the block.
    held: bool,
}

impl SequenceTracker {
    /// A tracker in `mode`, synced to `initial` (the committed sequence at
    /// relayer start-up).
    pub fn new(mode: SequenceTracking, initial: u64) -> Self {
        SequenceTracker {
            mode,
            next: initial,
            dirty: false,
            held: false,
        }
    }

    /// The tracking mode this tracker runs.
    pub fn mode(&self) -> SequenceTracking {
        self.mode
    }

    /// The sequence the next transaction will be signed with.
    pub fn next(&self) -> u64 {
        self.next
    }

    /// Advances past an accepted broadcast.
    pub fn advance(&mut self) {
        self.next += 1;
    }

    /// Overwrites the local sequence (the Resync arm's post-query reset).
    pub fn resync(&mut self, sequence: u64) {
        self.next = sequence;
    }

    /// Notes a block commit on this tracker's chain. In mempool-aware mode
    /// the commit may have reset the chain's check state, so the tracker
    /// must be reconciled before the next broadcast.
    pub fn note_commit(&mut self) {
        if self.mode == SequenceTracking::MempoolAware {
            self.dirty = true;
            self.held = false;
        }
    }

    /// Whether a broadcast must be preceded by a [`reconcile`]
    /// (mempool-aware mode after an observed commit).
    ///
    /// [`reconcile`]: SequenceTracker::reconcile
    pub fn needs_reconcile(&self) -> bool {
        self.dirty
    }

    /// Whether a reconcile already reported a straddle since the last
    /// observed commit. Batches can be held on this cached verdict without
    /// re-querying — the chain's check state cannot change until the next
    /// commit.
    pub fn is_held(&self) -> bool {
        self.held
    }

    /// Reconciles the local sequence against a mempool-aware query and
    /// returns whether the chain's `CheckTx` will accept the tracker's next
    /// sequence right now.
    ///
    /// `false` means the check state was reset while this account still has
    /// transactions in the mempool — the §V straddle — and any submission
    /// would either be rejected or collide with the in-flight window, so the
    /// caller should hold its batch until after the next commit. The tracker
    /// stays dirty in that case and is re-checked before the next attempt.
    pub fn reconcile(&mut self, snapshot: &UnconfirmedSequence) -> bool {
        // A check state ahead of the local view means the account advanced
        // without us (never the relayer's own doing in this model, but the
        // safe recovery is the same): adopt it.
        if snapshot.expected > self.next {
            self.next = snapshot.expected;
        }
        let ready = snapshot.expected == self.next;
        if ready {
            self.dirty = false;
        } else {
            self.held = true;
        }
        ready
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snapshot(committed: u64, expected: u64, pending: u64) -> UnconfirmedSequence {
        UnconfirmedSequence {
            committed,
            expected,
            pending,
        }
    }

    #[test]
    fn resync_trackers_are_plain_counters() {
        let mut t = SequenceTracker::new(SequenceTracking::Resync, 5);
        assert_eq!(t.next(), 5);
        t.advance();
        assert_eq!(t.next(), 6);
        t.note_commit();
        assert!(!t.needs_reconcile(), "resync mode never reconciles");
        t.resync(9);
        assert_eq!(t.next(), 9);
    }

    #[test]
    fn mempool_aware_reconciles_after_every_commit() {
        let mut t = SequenceTracker::new(SequenceTracking::MempoolAware, 0);
        assert!(!t.needs_reconcile(), "freshly synced trackers are clean");
        t.advance();
        t.advance();
        t.note_commit();
        assert!(t.needs_reconcile());

        // The commit included both transactions: check state caught up.
        assert!(t.reconcile(&snapshot(2, 2, 0)));
        assert!(!t.needs_reconcile());
        assert_eq!(t.next(), 2);
    }

    #[test]
    fn straddled_commits_hold_the_batch_until_the_window_drains() {
        let mut t = SequenceTracker::new(SequenceTracking::MempoolAware, 0);
        t.advance(); // seq 0 committed later
        t.advance(); // seq 1 straddles the commit
        t.note_commit();

        // One transaction committed, one still pending: the check state was
        // reset to 1 while the local continuation is 2 — not ready.
        assert!(!t.reconcile(&snapshot(1, 1, 1)));
        assert!(t.needs_reconcile(), "held trackers stay dirty");
        assert_eq!(t.next(), 2, "the local continuation is preserved");
        // The verdict is cached until the next commit: later batches of the
        // same block hold without re-querying.
        assert!(t.is_held());

        // The next commit drains the window; the reset lands on our next.
        t.note_commit();
        assert!(!t.is_held(), "a commit invalidates the cached verdict");
        assert!(t.reconcile(&snapshot(2, 2, 0)));
        assert_eq!(t.next(), 2);
        assert!(!t.is_held());
    }

    #[test]
    fn reconcile_adopts_a_check_state_that_ran_ahead() {
        let mut t = SequenceTracker::new(SequenceTracking::MempoolAware, 3);
        t.note_commit();
        assert!(t.reconcile(&snapshot(5, 5, 0)));
        assert_eq!(t.next(), 5);
    }
}
