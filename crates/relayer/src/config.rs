//! Relayer configuration.

use serde::{Deserialize, Serialize};

use xcc_chain::account::AccountId;
use xcc_sim::SimDuration;

use crate::strategy::RelayerStrategy;

/// Configuration of one Hermes-like relayer instance.
///
/// Defaults follow the paper's deployment: at most 100 messages per
/// transaction, the relayer co-located with the full nodes it queries, and no
/// packet-clear interval.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RelayerConfig {
    /// Maximum number of messages batched into one transaction (Hermes caps
    /// this at 100).
    pub max_msgs_per_tx: usize,
    /// The relayer's fee-paying account on the source chain.
    pub source_account: AccountId,
    /// The relayer's fee-paying account on the destination chain.
    pub destination_account: AccountId,
    /// CPU time to build (encode, sign, assemble proofs into) one message.
    pub build_cost_per_msg: SimDuration,
    /// Fixed processing overhead when handling one block's event batch.
    pub event_processing_overhead: SimDuration,
    /// Extra processing stagger applied per replica index within the
    /// process's coordination group (`coordination_id`, falling back to the
    /// process id), modelling the slightly different event arrival and
    /// scheduling of independent relayer processes competing for the same
    /// work.
    pub per_instance_stagger: SimDuration,
    /// The pipeline strategy this instance runs (event source, data fetcher,
    /// submission policy, coordination, channel policy, and the
    /// frame-limit / packet-clear-interval deployment knobs). The default
    /// reproduces the paper's Hermes pipeline.
    pub strategy: RelayerStrategy,
    /// How many relayer instances serve the channel in total — the divisor
    /// the coordination policy partitions work by. For a dedicated fleet
    /// this is the number of redundant replicas *per channel*, not the fleet
    /// size.
    pub instances: usize,
    /// Pins this process to a single channel index: the process serves that
    /// channel and ignores every other, regardless of the strategy's channel
    /// scheduler. Set by the testnet builder when
    /// [`ChannelPolicy::Dedicated`](crate::strategy::ChannelPolicy::Dedicated)
    /// expands the deployment into one relayer process per channel; `None`
    /// (the default) leaves channel routing to the scheduler stage.
    pub channel_assignment: Option<usize>,
    /// The identity this process presents to the coordination policy, when
    /// it differs from the process id. A dedicated fleet numbers its
    /// processes globally but coordinates redundancy *within* each channel's
    /// replica group, so replicas of different channels reuse coordination
    /// ids 0..replicas. `None` (the default) uses the process id.
    pub coordination_id: Option<usize>,
}

impl Default for RelayerConfig {
    fn default() -> Self {
        RelayerConfig {
            max_msgs_per_tx: 100,
            source_account: AccountId::new("relayer"),
            destination_account: AccountId::new("relayer"),
            build_cost_per_msg: SimDuration::from_micros(1_500),
            event_processing_overhead: SimDuration::from_millis(10),
            per_instance_stagger: SimDuration::from_millis(35),
            strategy: RelayerStrategy::default(),
            instances: 1,
            channel_assignment: None,
            coordination_id: None,
        }
    }
}

impl RelayerConfig {
    /// Splits `count` messages into transaction-sized chunks.
    pub fn chunks_for(&self, count: usize) -> usize {
        count.div_ceil(self.max_msgs_per_tx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_hermes_limits() {
        let cfg = RelayerConfig::default();
        assert_eq!(cfg.max_msgs_per_tx, 100);
        // The packet-clear interval lives on the strategy; the paper's
        // deployment disables it.
        assert_eq!(cfg.strategy.packet_clear_interval, 0);
    }

    #[test]
    fn chunking_rounds_up() {
        let cfg = RelayerConfig::default();
        assert_eq!(cfg.chunks_for(0), 0);
        assert_eq!(cfg.chunks_for(1), 1);
        assert_eq!(cfg.chunks_for(100), 1);
        assert_eq!(cfg.chunks_for(101), 2);
        assert_eq!(cfg.chunks_for(5_000), 50);
    }
}
