//! A Hermes-like IBC relayer.
//!
//! The relayer is the paper's "Cross-chain Communicator": an off-chain
//! process that watches both chains' event streams, pulls pending packet data
//! and proofs out of the source chain's RPC endpoint, batches up to 100
//! messages per transaction and submits receive / acknowledgement / timeout
//! transactions to the appropriate chain.
//!
//! Structure (mirroring Fig. 4 of the paper):
//!
//! * [`config::RelayerConfig`] — batching limits, accounts and processing
//!   overheads;
//! * [`relayer::Relayer`] — the supervisor + packet-worker pipeline for one
//!   channel, including redundant-packet detection, account-sequence
//!   management and timeout relaying;
//! * [`telemetry::TelemetryLog`] — per-packet timestamps for the 13 steps of
//!   a cross-chain transfer (Fig. 12) plus the error log (redundant packets,
//!   "Failed to collect events", sequence mismatches).
//!
//! Integration tests for the full relaying pipeline live in the workspace
//! `tests/` directory and in the `xcc-framework` crate, which owns the
//! experiment driver that feeds block events to relayer instances.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod relayer;
pub mod telemetry;
