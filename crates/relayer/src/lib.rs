//! A Hermes-like IBC relayer.
//!
//! The relayer is the paper's "Cross-chain Communicator": an off-chain
//! process that watches both chains' event streams, pulls pending packet data
//! and proofs out of the source chain's RPC endpoint, batches up to 100
//! messages per transaction and submits receive / acknowledgement / timeout
//! transactions to the appropriate chain.
//!
//! Structure (mirroring Fig. 4 of the paper):
//!
//! * [`config::RelayerConfig`] — batching limits, accounts and processing
//!   overheads;
//! * [`strategy::RelayerStrategy`] — the serde-able description of the
//!   pipeline: event source, data fetcher, submission policy and
//!   coordination mode. The default reproduces the paper's Hermes pipeline;
//!   the other variants open the paper's "what if?" counterfactuals
//!   (batched/parallel pulls, windowed submission, coordinated instances);
//! * [`stages`] — the pipeline stage traits ([`stages::EventSource`],
//!   [`stages::DataFetcher`], [`stages::SubmissionPolicy`],
//!   [`stages::CoordinationPolicy`]) and their implementations;
//! * [`relayer::Relayer`] — the thin driver composing the stages for one
//!   channel, including redundant-packet detection, account-sequence
//!   management and timeout relaying;
//! * [`sequence::SequenceTracker`] — the per-chain account-sequence state
//!   behind the broadcast path, implementing both arms of
//!   [`strategy::SequenceTracking`] (the §V sequence race and its
//!   mempool-aware fix);
//! * [`telemetry::TelemetryLog`] — per-packet timestamps for the 13 steps of
//!   a cross-chain transfer (Fig. 12) plus the error log (redundant packets,
//!   "Failed to collect events", sequence mismatches).
//!
//! Integration tests for the full relaying pipeline live in the workspace
//! `tests/` directory and in the `xcc-framework` crate, which owns the
//! experiment driver that feeds block events to relayer instances.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod config;
pub mod relayer;
pub mod sequence;
pub mod stages;
pub mod strategy;
pub mod telemetry;

pub use strategy::RelayerStrategy;
