//! Relayer telemetry: per-packet step timestamps and error log.
//!
//! The paper's latency analysis (Fig. 12) decomposes each cross-chain
//! transfer into 13 steps, from the broadcast of the transfer message to the
//! confirmation of the acknowledgement. The relayer records a timestamp for
//! every step of every packet it handles; the framework's Analysis module
//! consumes this log to rebuild the paper's figures.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use xcc_ibc::ids::Sequence;
use xcc_sim::{prof, SimTime};

/// The 13 steps of a complete cross-chain transfer (Fig. 12 of the paper).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub enum TransferStep {
    /// 1. The transfer transaction is broadcast to the source chain.
    TransferBroadcast,
    /// 2. The relayer extracts the transfer message from block events.
    TransferMsgExtraction,
    /// 3. The relayer confirms the transfer transaction was committed.
    TransferConfirmation,
    /// 4. The relayer pulls the packet data and proofs from the source chain.
    TransferDataPull,
    /// 5. The relayer builds the receive message.
    RecvBuild,
    /// 6. The receive transaction is broadcast to the destination chain.
    RecvBroadcast,
    /// 7. The relayer extracts the receive message from destination events.
    RecvMsgExtraction,
    /// 8. The relayer confirms the receive transaction was committed.
    RecvConfirmation,
    /// 9. The relayer pulls the acknowledgement data from the destination.
    RecvDataPull,
    /// 10. The relayer builds the acknowledgement message.
    AckBuild,
    /// 11. The acknowledgement transaction is broadcast to the source chain.
    AckBroadcast,
    /// 12. The relayer extracts the acknowledgement from source events.
    AckMsgExtraction,
    /// 13. The relayer confirms the acknowledgement was committed.
    AckConfirmation,
}

impl TransferStep {
    /// All steps in execution order.
    pub const ALL: [TransferStep; 13] = [
        TransferStep::TransferBroadcast,
        TransferStep::TransferMsgExtraction,
        TransferStep::TransferConfirmation,
        TransferStep::TransferDataPull,
        TransferStep::RecvBuild,
        TransferStep::RecvBroadcast,
        TransferStep::RecvMsgExtraction,
        TransferStep::RecvConfirmation,
        TransferStep::RecvDataPull,
        TransferStep::AckBuild,
        TransferStep::AckBroadcast,
        TransferStep::AckMsgExtraction,
        TransferStep::AckConfirmation,
    ];

    /// The 1-based index the paper uses for the step.
    pub fn index(&self) -> usize {
        self.slot() + 1
    }

    /// The step's dense 0-based storage slot (`ALL[slot()] == *self`).
    const fn slot(self) -> usize {
        match self {
            TransferStep::TransferBroadcast => 0,
            TransferStep::TransferMsgExtraction => 1,
            TransferStep::TransferConfirmation => 2,
            TransferStep::TransferDataPull => 3,
            TransferStep::RecvBuild => 4,
            TransferStep::RecvBroadcast => 5,
            TransferStep::RecvMsgExtraction => 6,
            TransferStep::RecvConfirmation => 7,
            TransferStep::RecvDataPull => 8,
            TransferStep::AckBuild => 9,
            TransferStep::AckBroadcast => 10,
            TransferStep::AckMsgExtraction => 11,
            TransferStep::AckConfirmation => 12,
        }
    }

    /// A short human-readable label matching the paper's legend.
    pub fn label(&self) -> &'static str {
        match self {
            TransferStep::TransferBroadcast => "Transfer broadcast",
            TransferStep::TransferMsgExtraction => "Transfer msg. extraction",
            TransferStep::TransferConfirmation => "Transfer confirmation",
            TransferStep::TransferDataPull => "Transfer data pull",
            TransferStep::RecvBuild => "Recv build",
            TransferStep::RecvBroadcast => "Recv broadcast",
            TransferStep::RecvMsgExtraction => "Recv msg. extraction",
            TransferStep::RecvConfirmation => "Recv confirmation",
            TransferStep::RecvDataPull => "Recv data pull",
            TransferStep::AckBuild => "Ack build",
            TransferStep::AckBroadcast => "Ack broadcast",
            TransferStep::AckMsgExtraction => "Ack msg. extraction",
            TransferStep::AckConfirmation => "Ack confirmation",
        }
    }
}

/// A logged relayer error (redundant packets, failed event collection,
/// sequence mismatches…), mirroring Hermes' log lines.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RelayerError {
    /// When the error occurred.
    pub at: SimTime,
    /// The error message.
    pub message: String,
}

/// Number of storage slots per packet, one per [`TransferStep`].
const STEP_SLOTS: usize = TransferStep::ALL.len();

/// The recorded step times of one packet, indexed by `TransferStep::slot`.
type PacketSteps = [Option<SimTime>; STEP_SLOTS];

/// One channel's packet rows, stored densely by sequence offset.
///
/// Packet sequences on a channel are consecutive counters handed out by the
/// chain, so a per-sequence `Vec` row indexed by `sequence - base` replaces
/// the former per-packet `BTreeMap` without losing sparseness where it
/// matters: `base` tracks the smallest sequence seen, and the occasional gap
/// costs one empty 13-slot row instead of a tree node per step.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
struct ChannelLog {
    /// Sequence value addressed by `rows[0]`.
    base: u64,
    rows: Vec<PacketSteps>,
}

impl ChannelLog {
    const EMPTY_ROW: PacketSteps = [None; STEP_SLOTS];

    /// The row for `seq`, growing the dense storage in either direction.
    fn row_mut(&mut self, seq: u64) -> &mut PacketSteps {
        if self.rows.is_empty() {
            self.base = seq;
            self.rows.push(Self::EMPTY_ROW);
        } else if seq < self.base {
            let missing = (self.base - seq) as usize;
            self.rows
                .splice(0..0, std::iter::repeat_n(Self::EMPTY_ROW, missing));
            self.base = seq;
        }
        let idx = (seq - self.base) as usize;
        if idx >= self.rows.len() {
            self.rows.resize(idx + 1, Self::EMPTY_ROW);
        }
        &mut self.rows[idx]
    }

    /// The row for `seq`, if within the stored range.
    fn row(&self, seq: u64) -> Option<&PacketSteps> {
        let idx = seq.checked_sub(self.base)?;
        self.rows.get(idx as usize)
    }

    /// `(sequence, row)` for every packet with at least one recorded step,
    /// in ascending sequence order (gap filler rows are skipped).
    fn tracked(&self) -> impl Iterator<Item = (u64, &PacketSteps)> {
        let base = self.base;
        self.rows
            .iter()
            .enumerate()
            .filter(|(_, row)| row.iter().any(Option::is_some))
            .map(move |(i, row)| (base + i as u64, row))
    }

    /// Number of packets with at least one recorded step.
    fn tracked_len(&self) -> usize {
        self.rows
            .iter()
            .filter(|row| row.iter().any(Option::is_some))
            .count()
    }
}

/// The per-packet step log of one relayer instance.
///
/// Packets are keyed by `(channel index, sequence)`: packet sequences are
/// scoped to one channel end, so in multi-channel deployments two distinct
/// packets legitimately share a sequence number and only the pair is unique.
/// The sequence-only methods ([`record`](TelemetryLog::record),
/// [`step_time`](TelemetryLog::step_time)) address channel 0 — the primary
/// channel, and the only one in every single-channel experiment — while the
/// `*_on` variants take an explicit channel index.
///
/// Internally each channel stores its packets as dense rows indexed by
/// sequence offset (see `ChannelLog`); lookups and records are O(1) in the
/// packet count where the former triple-`BTreeMap` keying paid a tree walk
/// per step.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TelemetryLog {
    channels: BTreeMap<u64, ChannelLog>,
    errors: Vec<RelayerError>,
}

impl TelemetryLog {
    /// Creates an empty log.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records that `step` completed for packet `sequence` of channel 0 at
    /// `time`. The earliest recorded time wins if a step is recorded twice.
    pub fn record(&mut self, sequence: Sequence, step: TransferStep, time: SimTime) {
        self.record_on(0, sequence, step, time);
    }

    /// Records that `step` completed for packet `sequence` of the channel at
    /// index `channel` at `time`; the earliest recorded time wins.
    pub fn record_on(
        &mut self,
        channel: u64,
        sequence: Sequence,
        step: TransferStep,
        time: SimTime,
    ) {
        prof::bump_telemetry_record();
        self.record_inner(channel, sequence, step, time);
    }

    /// The record path shared with [`merge_offset`](TelemetryLog::merge_offset),
    /// which re-files already-counted records and must not bump the xcc-prof
    /// counter again.
    fn record_inner(
        &mut self,
        channel: u64,
        sequence: Sequence,
        step: TransferStep,
        time: SimTime,
    ) {
        let cell = &mut self
            .channels
            .entry(channel)
            .or_default()
            .row_mut(sequence.value())[step.slot()];
        match cell {
            Some(existing) if *existing <= time => {}
            _ => *cell = Some(time),
        }
    }

    /// Records an error line.
    pub fn record_error(&mut self, at: SimTime, message: impl Into<String>) {
        self.errors.push(RelayerError {
            at,
            message: message.into(),
        });
    }

    /// The recorded errors, in insertion order.
    pub fn errors(&self) -> &[RelayerError] {
        &self.errors
    }

    /// Number of errors whose message contains `needle`.
    pub fn errors_containing(&self, needle: &str) -> usize {
        self.errors
            .iter()
            .filter(|e| e.message.contains(needle))
            .count()
    }

    /// The time at which `step` completed for `sequence` on channel 0.
    pub fn step_time(&self, sequence: Sequence, step: TransferStep) -> Option<SimTime> {
        self.step_time_on(0, sequence, step)
    }

    /// The time at which `step` completed for `sequence` on the channel at
    /// index `channel`, if recorded.
    pub fn step_time_on(
        &self,
        channel: u64,
        sequence: Sequence,
        step: TransferStep,
    ) -> Option<SimTime> {
        self.channels
            .get(&channel)
            .and_then(|chan| chan.row(sequence.value()))
            .and_then(|row| row[step.slot()])
    }

    /// All completion times recorded for `step` across every channel, one
    /// per packet, in (channel, sequence) order.
    pub fn times_for_step(&self, step: TransferStep) -> Vec<SimTime> {
        self.channels
            .values()
            .flat_map(|chan| chan.rows.iter())
            .filter_map(|row| row[step.slot()])
            .collect()
    }

    /// All completion times recorded for `step` on one channel.
    pub fn times_for_step_on(&self, channel: u64, step: TransferStep) -> Vec<SimTime> {
        self.channels
            .get(&channel)
            .into_iter()
            .flat_map(|chan| chan.rows.iter())
            .filter_map(|row| row[step.slot()])
            .collect()
    }

    /// Number of packets (across every channel) that completed `step`.
    pub fn count_for_step(&self, step: TransferStep) -> usize {
        self.channels
            .values()
            .flat_map(|chan| chan.rows.iter())
            .filter(|row| row[step.slot()].is_some())
            .count()
    }

    /// Number of packets on one channel that completed `step`.
    pub fn count_for_step_on(&self, channel: u64, step: TransferStep) -> usize {
        self.channels
            .get(&channel)
            .map(|chan| {
                chan.rows
                    .iter()
                    .filter(|row| row[step.slot()].is_some())
                    .count()
            })
            .unwrap_or(0)
    }

    /// The channel indexes with at least one tracked packet.
    pub fn channels(&self) -> Vec<u64> {
        self.channels.keys().copied().collect()
    }

    /// Every tracked packet as a `(channel index, sequence)` pair.
    pub fn packets(&self) -> Vec<(u64, Sequence)> {
        self.channels
            .iter()
            .flat_map(|(channel, chan)| {
                chan.tracked()
                    .map(move |(seq, _)| (*channel, Sequence::from(seq)))
            })
            .collect()
    }

    /// Sequences tracked by this log, one entry per packet. In multi-channel
    /// deployments the same sequence value can appear once per channel; use
    /// [`packets`](TelemetryLog::packets) when the channel matters.
    pub fn sequences(&self) -> Vec<Sequence> {
        self.channels
            .values()
            .flat_map(|chan| chan.tracked().map(|(seq, _)| Sequence::from(seq)))
            .collect()
    }

    /// Number of packets tracked across every channel.
    pub fn len(&self) -> usize {
        self.channels.values().map(ChannelLog::tracked_len).sum()
    }

    /// `true` when no packets were tracked.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Merges another log into this one (used when aggregating the telemetry
    /// of several relayer instances); per step, the earliest time wins.
    pub fn merge(&mut self, other: &TelemetryLog) {
        self.merge_offset(other, 0);
    }

    /// Merges another log, shifting every channel index by `channel_offset`.
    ///
    /// Relayer processes number channels locally (their first assigned
    /// channel is 0); when a fleet spans several topology edges the
    /// aggregator re-keys each process's log into the global edge-major
    /// channel space by passing the edge's channel offset. An offset of 0 is
    /// exactly [`merge`](TelemetryLog::merge).
    pub fn merge_offset(&mut self, other: &TelemetryLog, channel_offset: u64) {
        for (channel, chan) in &other.channels {
            for (seq, row) in chan.tracked() {
                for (slot, time) in row.iter().enumerate() {
                    if let Some(time) = *time {
                        self.record_inner(
                            channel + channel_offset,
                            Sequence::from(seq),
                            TransferStep::ALL[slot],
                            time,
                        );
                    }
                }
            }
        }
        self.errors.extend(other.errors.iter().cloned());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn steps_are_ordered_and_labelled() {
        assert_eq!(TransferStep::ALL.len(), 13);
        assert_eq!(TransferStep::TransferBroadcast.index(), 1);
        assert_eq!(TransferStep::AckConfirmation.index(), 13);
        assert_eq!(TransferStep::RecvDataPull.label(), "Recv data pull");
    }

    #[test]
    fn record_keeps_earliest_time() {
        let mut log = TelemetryLog::new();
        let seq = Sequence::from(1);
        log.record(seq, TransferStep::RecvBroadcast, SimTime::from_secs(20));
        log.record(seq, TransferStep::RecvBroadcast, SimTime::from_secs(10));
        log.record(seq, TransferStep::RecvBroadcast, SimTime::from_secs(30));
        assert_eq!(
            log.step_time(seq, TransferStep::RecvBroadcast),
            Some(SimTime::from_secs(10))
        );
    }

    #[test]
    fn counting_and_listing_steps() {
        let mut log = TelemetryLog::new();
        for i in 1..=5u64 {
            log.record(
                Sequence::from(i),
                TransferStep::TransferBroadcast,
                SimTime::from_secs(i),
            );
        }
        log.record(
            Sequence::from(1),
            TransferStep::AckConfirmation,
            SimTime::from_secs(100),
        );
        assert_eq!(log.count_for_step(TransferStep::TransferBroadcast), 5);
        assert_eq!(log.count_for_step(TransferStep::AckConfirmation), 1);
        assert_eq!(log.times_for_step(TransferStep::TransferBroadcast).len(), 5);
        assert_eq!(log.sequences().len(), 5);
        assert_eq!(log.len(), 5);
        assert!(!log.is_empty());
        assert_eq!(
            log.step_time(Sequence::from(9), TransferStep::RecvBuild),
            None
        );
    }

    #[test]
    fn dense_rows_grow_both_ways_without_phantom_packets() {
        let mut log = TelemetryLog::new();
        let step = TransferStep::RecvBroadcast;
        log.record(Sequence::from(10), step, SimTime::from_secs(1));
        // Growing downwards and leaving gaps must not invent packets.
        log.record(Sequence::from(2), step, SimTime::from_secs(2));
        log.record(Sequence::from(6), step, SimTime::from_secs(3));
        assert_eq!(log.len(), 3);
        assert_eq!(
            log.sequences(),
            vec![Sequence::from(2), Sequence::from(6), Sequence::from(10)]
        );
        assert_eq!(log.count_for_step(step), 3);
        assert_eq!(log.step_time(Sequence::from(5), step), None);
        assert_eq!(log.step_time(Sequence::from(1), step), None);
        assert_eq!(log.step_time(Sequence::from(11), step), None);
        assert_eq!(
            log.step_time(Sequence::from(6), step),
            Some(SimTime::from_secs(3))
        );
    }

    #[test]
    fn errors_are_logged_and_searchable() {
        let mut log = TelemetryLog::new();
        log.record_error(SimTime::from_secs(1), "packet messages are redundant");
        log.record_error(SimTime::from_secs(2), "account sequence mismatch");
        log.record_error(SimTime::from_secs(3), "packet messages are redundant");
        assert_eq!(log.errors().len(), 3);
        assert_eq!(log.errors_containing("redundant"), 2);
    }

    #[test]
    fn merge_takes_earliest_and_concatenates_errors() {
        let mut a = TelemetryLog::new();
        let mut b = TelemetryLog::new();
        a.record(
            Sequence::from(1),
            TransferStep::RecvBroadcast,
            SimTime::from_secs(10),
        );
        b.record(
            Sequence::from(1),
            TransferStep::RecvBroadcast,
            SimTime::from_secs(5),
        );
        b.record(
            Sequence::from(2),
            TransferStep::RecvBroadcast,
            SimTime::from_secs(7),
        );
        b.record_error(SimTime::from_secs(1), "x");
        a.merge(&b);
        assert_eq!(
            a.step_time(Sequence::from(1), TransferStep::RecvBroadcast),
            Some(SimTime::from_secs(5))
        );
        assert_eq!(a.len(), 2);
        assert_eq!(a.errors().len(), 1);
    }

    #[test]
    fn channels_keep_independent_sequence_spaces() {
        let mut log = TelemetryLog::new();
        let seq = Sequence::from(1);
        log.record_on(0, seq, TransferStep::RecvBroadcast, SimTime::from_secs(1));
        log.record_on(1, seq, TransferStep::RecvBroadcast, SimTime::from_secs(2));
        // Same sequence on two channels: two distinct packets.
        assert_eq!(log.len(), 2);
        assert_eq!(log.channels(), vec![0, 1]);
        assert_eq!(log.packets(), vec![(0, seq), (1, seq)]);
        assert_eq!(
            log.step_time_on(1, seq, TransferStep::RecvBroadcast),
            Some(SimTime::from_secs(2))
        );
        // Channel-agnostic views aggregate; `step_time` addresses channel 0.
        assert_eq!(log.count_for_step(TransferStep::RecvBroadcast), 2);
        assert_eq!(log.count_for_step_on(1, TransferStep::RecvBroadcast), 1);
        assert_eq!(
            log.times_for_step_on(0, TransferStep::RecvBroadcast).len(),
            1
        );
        assert_eq!(
            log.step_time(seq, TransferStep::RecvBroadcast),
            Some(SimTime::from_secs(1))
        );
    }
}
