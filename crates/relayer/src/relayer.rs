//! The relayer instance: a thin driver over pluggable pipeline stages.
//!
//! The architecture mirrors Fig. 4 of the paper: a supervisor subscribed to
//! both chains' event streams hands each new block to the packet worker for
//! the affected channel direction; the worker pulls packet data and proofs
//! from the source chain's RPC endpoint, builds batched transactions of at
//! most 100 messages, and submits them through the chain endpoint, tracking
//! its own account sequence. Every step is timestamped into the telemetry
//! log.
//!
//! Where the paper's Hermes hard-codes each of those decisions, this driver
//! delegates them to the trait stages of [`crate::stages`], instantiated
//! from the [`RelayerStrategy`](crate::strategy::RelayerStrategy) in the
//! relayer's [`RelayerConfig`]:
//!
//! * the [`EventSource`](crate::stages::EventSource) delivers block events
//!   (WebSocket push vs RPC polling);
//! * the [`DataFetcher`](crate::stages::DataFetcher) pulls packet data and
//!   proofs (sequential vs batched vs parallel);
//! * the [`SubmissionPolicy`](crate::stages::SubmissionPolicy) decides when
//!   pending packets are relayed (eager vs windowed vs adaptive);
//! * the [`CoordinationPolicy`](crate::stages::CoordinationPolicy) divides
//!   work between instances (none vs partition vs leases).
//!
//! With the default strategy the driver issues exactly the same RPC calls at
//! exactly the same simulated instants as the paper's monolithic pipeline —
//! `tests/relayer_strategies.rs` pins this against golden fixtures.

use std::collections::{BTreeMap, HashSet};

use xcc_chain::msg::Msg;
use xcc_chain::tx::Tx;
use xcc_ibc::commitment::CommitmentProof;
use xcc_ibc::events as ibc_events;
use xcc_ibc::height::Height;
use xcc_ibc::ids::{ChannelId, ClientId, PortId, Sequence};
use xcc_ibc::packet::{Acknowledgement, Packet};
use xcc_rpc::endpoint::{BroadcastError, RpcEndpoint};
use xcc_sim::{SimDuration, SimTime};

use crate::config::RelayerConfig;
use crate::stages::Stages;
use crate::telemetry::{TelemetryLog, TransferStep};

/// Which side of the relay path a chain plays for this relayer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainRole {
    /// The chain transfers originate from.
    Source,
    /// The chain transfers are delivered to.
    Destination,
}

/// The identifiers of the channel the relayer serves.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelayPath {
    /// The port on both ends (`transfer` for ICS-20).
    pub port: PortId,
    /// Channel end on the source chain.
    pub src_channel: ChannelId,
    /// Channel end on the destination chain.
    pub dst_channel: ChannelId,
    /// The client hosted on the destination chain that tracks the source.
    pub client_on_dst: ClientId,
    /// The client hosted on the source chain that tracks the destination.
    pub client_on_src: ClientId,
}

/// Aggregate counters describing one relayer's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelayerStats {
    /// Receive transactions submitted to the destination chain.
    pub recv_txs_submitted: u64,
    /// Acknowledgement transactions submitted to the source chain.
    pub ack_txs_submitted: u64,
    /// Timeout transactions submitted to the source chain.
    pub timeout_txs_submitted: u64,
    /// Packets skipped because the destination already received them
    /// (observed redundancy avoided before broadcast).
    pub packets_skipped_already_relayed: u64,
    /// Packets this instance observed but left to another instance under the
    /// configured coordination policy.
    pub packets_left_to_peers: u64,
    /// Broadcast attempts that failed (sequence mismatches, full mempools…).
    pub broadcast_failures: u64,
    /// Blocks whose events could not be collected over the WebSocket.
    pub event_collection_failures: u64,
}

/// A Hermes-like relayer serving one channel between two chains.
pub struct Relayer {
    id: usize,
    config: RelayerConfig,
    path: RelayPath,
    stages: Stages,
    src_rpc: RpcEndpoint,
    dst_rpc: RpcEndpoint,
    src_account_seq: u64,
    dst_account_seq: u64,
    src_fee_denom: String,
    dst_fee_denom: String,
    worker_out_free: SimTime,
    worker_back_free: SimTime,
    telemetry: TelemetryLog,
    stats: RelayerStats,
    /// Packets collected but not yet relayed, each with the source height
    /// that committed it (the submission policy may hold them across source
    /// blocks; data pulls are priced against the committing block).
    pending_recv: Vec<(u64, Packet)>,
    /// Packets this relayer has seen sent but not yet observed as received,
    /// kept for timeout detection.
    pending_delivery: BTreeMap<u64, Packet>,
}

impl Relayer {
    /// Creates a relayer instance with its own RPC connections to both
    /// chains' full nodes, building the pipeline stages from the strategy in
    /// `config`.
    pub fn new(
        id: usize,
        config: RelayerConfig,
        path: RelayPath,
        mut src_rpc: RpcEndpoint,
        mut dst_rpc: RpcEndpoint,
    ) -> Self {
        let src_account_seq = src_rpc
            .account_sequence(SimTime::ZERO, &config.source_account)
            .value;
        let dst_account_seq = dst_rpc
            .account_sequence(SimTime::ZERO, &config.destination_account)
            .value;
        let src_fee_denom = src_rpc.chain().borrow().app().fee_denom().to_string();
        let dst_fee_denom = dst_rpc.chain().borrow().app().fee_denom().to_string();
        let stages = config.strategy.build();
        Relayer {
            id,
            config,
            path,
            stages,
            src_rpc,
            dst_rpc,
            src_account_seq,
            dst_account_seq,
            src_fee_denom,
            dst_fee_denom,
            worker_out_free: SimTime::ZERO,
            worker_back_free: SimTime::ZERO,
            telemetry: TelemetryLog::new(),
            stats: RelayerStats::default(),
            pending_recv: Vec::new(),
            pending_delivery: BTreeMap::new(),
        }
    }

    /// This relayer's index (0-based).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The relay path served.
    pub fn path(&self) -> &RelayPath {
        &self.path
    }

    /// The per-step telemetry collected so far.
    pub fn telemetry(&self) -> &TelemetryLog {
        &self.telemetry
    }

    /// Aggregate activity counters.
    pub fn stats(&self) -> &RelayerStats {
        &self.stats
    }

    /// The pipeline stages this instance runs.
    pub fn stages(&self) -> &Stages {
        &self.stages
    }

    /// The RPC endpoint this relayer uses towards the source chain.
    pub fn src_rpc(&self) -> &RpcEndpoint {
        &self.src_rpc
    }

    /// The RPC endpoint this relayer uses towards the destination chain.
    pub fn dst_rpc(&self) -> &RpcEndpoint {
        &self.dst_rpc
    }

    /// The relayer-side share of the event delivery delay: fixed processing
    /// overhead plus the per-instance stagger modelling independently
    /// scheduled relayer processes.
    fn relayer_delay(&self) -> SimDuration {
        self.config.event_processing_overhead + self.config.per_instance_stagger * self.id as u64
    }

    /// Whether this instance relays `sequence` under the coordination policy.
    fn assigned(&self, src_height: u64, sequence: Sequence) -> bool {
        self.stages.coordination.assigned(
            self.id,
            self.config.instances.max(1),
            src_height,
            sequence,
        )
    }

    /// Handles a newly committed block on the **source** chain: extracts
    /// send-packet events, pulls packet data and proofs, and submits receive
    /// transactions to the destination chain. Also records acknowledgement
    /// confirmations observed in the block.
    pub fn on_source_block(&mut self, height: u64, commit_time: SimTime) {
        let delay = self.relayer_delay();
        let (event_time, collected) =
            self.stages
                .src_events
                .collect(&mut self.src_rpc, height, commit_time, delay);
        let batch = match collected {
            Ok(batch) => batch,
            Err(message) => {
                self.stats.event_collection_failures += 1;
                self.telemetry.record_error(event_time, message);
                return;
            }
        };

        for (_hash, code, events) in &batch.tx_events {
            if *code != 0 {
                continue;
            }
            for event in events {
                if !ibc_events::is_for_channel(event, &self.path.port, &self.path.src_channel) {
                    continue;
                }
                match event.kind.as_str() {
                    ibc_events::SEND_PACKET => {
                        if let Some(packet) = ibc_events::packet_from_event(event) {
                            self.telemetry.record(
                                packet.sequence,
                                TransferStep::TransferMsgExtraction,
                                event_time,
                            );
                            self.telemetry.record(
                                packet.sequence,
                                TransferStep::TransferConfirmation,
                                event_time,
                            );
                            if self.assigned(height, packet.sequence) {
                                self.pending_delivery
                                    .insert(packet.sequence.value(), packet.clone());
                                self.pending_recv.push((height, packet));
                            } else {
                                self.stats.packets_left_to_peers += 1;
                            }
                        }
                    }
                    ibc_events::ACK_PACKET => {
                        if let Some(packet) = ibc_events::packet_from_event(event) {
                            self.telemetry.record(
                                packet.sequence,
                                TransferStep::AckMsgExtraction,
                                commit_time,
                            );
                            self.telemetry.record(
                                packet.sequence,
                                TransferStep::AckConfirmation,
                                commit_time,
                            );
                        }
                    }
                    ibc_events::TIMEOUT_PACKET => {
                        if let Some(packet) = ibc_events::packet_from_event(event) {
                            self.pending_delivery.remove(&packet.sequence.value());
                        }
                    }
                    _ => {}
                }
            }
        }

        if self.pending_recv.is_empty() {
            return;
        }
        if !self
            .stages
            .submission
            .should_flush(self.pending_recv.len(), self.config.max_msgs_per_tx)
        {
            return;
        }
        let batch = std::mem::take(&mut self.pending_recv);
        self.relay_recv_batch(event_time, batch);
    }

    /// Handles a newly committed block on the **destination** chain: records
    /// receive confirmations, pulls acknowledgement data, submits
    /// acknowledgement transactions back to the source chain, and submits
    /// timeouts for expired undelivered packets.
    pub fn on_dest_block(&mut self, height: u64, commit_time: SimTime) {
        let delay = self.relayer_delay();
        let (event_time, collected) =
            self.stages
                .dst_events
                .collect(&mut self.dst_rpc, height, commit_time, delay);
        let batch = match collected {
            Ok(batch) => batch,
            Err(message) => {
                self.stats.event_collection_failures += 1;
                self.telemetry.record_error(event_time, message);
                return;
            }
        };

        let mut acked_packets: Vec<(Packet, Acknowledgement)> = Vec::new();
        for (_hash, code, events) in &batch.tx_events {
            if *code != 0 {
                continue;
            }
            for event in events {
                if !ibc_events::is_for_channel(event, &self.path.port, &self.path.dst_channel) {
                    continue;
                }
                if event.kind == ibc_events::WRITE_ACK {
                    if let (Some(packet), Some(ack)) = (
                        ibc_events::packet_from_event(event),
                        ibc_events::ack_from_event(event),
                    ) {
                        self.telemetry.record(
                            packet.sequence,
                            TransferStep::RecvMsgExtraction,
                            event_time,
                        );
                        self.telemetry.record(
                            packet.sequence,
                            TransferStep::RecvConfirmation,
                            event_time,
                        );
                        self.pending_delivery.remove(&packet.sequence.value());
                        // The packet was already counted towards
                        // `packets_left_to_peers` on the source side if it
                        // belongs to another instance; here the assignment
                        // only routes the acknowledgement work.
                        if self.assigned(height, packet.sequence) {
                            acked_packets.push((packet, ack));
                        }
                    }
                }
            }
        }

        let dest_height = height;
        let dest_time = commit_time;
        if !acked_packets.is_empty() {
            self.relay_ack_batch(dest_height, event_time, acked_packets);
        }
        self.relay_timeouts(dest_height, dest_time, event_time);
    }

    /// Pulls data, builds and broadcasts `MsgRecvPacket` batches.
    fn relay_recv_batch(&mut self, event_time: SimTime, packets: Vec<(u64, Packet)>) {
        let mut t = event_time.max(self.worker_out_free);

        // Skip packets the destination has already received (another relayer
        // beat us to them).
        let sequences: Vec<Sequence> = packets.iter().map(|(_, p)| p.sequence).collect();
        let unreceived_resp =
            self.dst_rpc
                .unreceived_packets(t, &self.path.port, &self.path.dst_channel, &sequences);
        t = unreceived_resp.ready_at;
        let unreceived: HashSet<Sequence> = unreceived_resp.value.into_iter().collect();
        let to_relay: Vec<&(u64, Packet)> = packets
            .iter()
            .filter(|(_, p)| unreceived.contains(&p.sequence))
            .collect();
        let skipped = packets.len() - to_relay.len();
        if skipped > 0 {
            self.stats.packets_skipped_already_relayed += skipped as u64;
            self.telemetry.record_error(
                t,
                format!("skipping {skipped} packets: packet messages are redundant"),
            );
        }
        if to_relay.is_empty() {
            self.worker_out_free = t;
            return;
        }

        // Data pull through the configured fetch strategy, one fetch per
        // origin block so every packet's pull is priced against the block
        // that committed it (with eager submission there is exactly one
        // group: the block just handled).
        let chunk_size = self.config.max_msgs_per_tx;
        let mut proofs: BTreeMap<u64, CommitmentProof> = BTreeMap::new();
        let mut group_start = 0usize;
        while group_start < to_relay.len() {
            let group_height = to_relay[group_start].0;
            let group_end = to_relay[group_start..]
                .iter()
                .position(|(h, _)| *h != group_height)
                .map(|offset| group_start + offset)
                .unwrap_or(to_relay.len());
            let group_seqs: Vec<Sequence> = to_relay[group_start..group_end]
                .iter()
                .map(|(_, p)| p.sequence)
                .collect();
            let fetch = self.stages.fetcher.fetch_packet_data(
                &mut self.src_rpc,
                t,
                group_height,
                &self.path.port,
                &self.path.src_channel,
                &group_seqs,
                chunk_size,
            );
            for (seq, at) in &fetch.pull_times {
                self.telemetry
                    .record(*seq, TransferStep::TransferDataPull, *at);
            }
            t = fetch.done_at;
            proofs.extend(fetch.proofs);
            group_start = group_end;
        }

        // Client update for the destination-side client, then build+broadcast.
        let update_resp = self.src_rpc.client_update_data(t);
        t = update_resp.ready_at;
        let Some(update) = update_resp.value else {
            self.worker_out_free = t;
            return;
        };
        let proof_height = Height::at(update.header.height);

        // The client update travels in its own transaction ahead of the
        // packet batches.
        let update_tx_msgs = vec![Msg::IbcUpdateClient {
            client_id: self.path.client_on_dst.clone(),
            update: Box::new(update),
            signer: self.config.destination_account.clone(),
        }];
        t = self.broadcast(ChainRole::Destination, t, update_tx_msgs, &[]);

        let to_relay_owned: Vec<Packet> = to_relay.into_iter().map(|(_, p)| p.clone()).collect();
        for chunk in to_relay_owned.chunks(chunk_size) {
            t += self.config.build_cost_per_msg * chunk.len() as u64;
            let mut msgs = Vec::with_capacity(chunk.len());
            let mut chunk_seqs = Vec::with_capacity(chunk.len());
            for packet in chunk {
                let Some(proof) = proofs.get(&packet.sequence.value()) else {
                    continue;
                };
                chunk_seqs.push(packet.sequence);
                self.telemetry
                    .record(packet.sequence, TransferStep::RecvBuild, t);
                msgs.push(Msg::IbcRecvPacket {
                    packet: packet.clone(),
                    proof_commitment: proof.clone(),
                    proof_height,
                    signer: self.config.destination_account.clone(),
                });
            }
            if msgs.is_empty() {
                continue;
            }
            t = self.broadcast(ChainRole::Destination, t, msgs, &chunk_seqs);
            self.stats.recv_txs_submitted += 1;
            for seq in &chunk_seqs {
                self.telemetry.record(*seq, TransferStep::RecvBroadcast, t);
            }
        }
        self.worker_out_free = t;
    }

    /// Pulls acknowledgement data, builds and broadcasts `MsgAcknowledgement`
    /// batches back to the source chain.
    fn relay_ack_batch(
        &mut self,
        dst_height: u64,
        event_time: SimTime,
        acked: Vec<(Packet, Acknowledgement)>,
    ) {
        let mut t = event_time.max(self.worker_back_free);

        // Skip acknowledgements whose commitments are already cleared on the
        // source chain (another relayer acknowledged them first).
        let sequences: Vec<Sequence> = acked.iter().map(|(p, _)| p.sequence).collect();
        let unacked_resp = self.src_rpc.unacknowledged_packets(
            t,
            &self.path.port,
            &self.path.src_channel,
            &sequences,
        );
        t = unacked_resp.ready_at;
        let unacked: HashSet<Sequence> = unacked_resp.value.into_iter().collect();
        let to_relay: Vec<&(Packet, Acknowledgement)> = acked
            .iter()
            .filter(|(p, _)| unacked.contains(&p.sequence))
            .collect();
        let skipped = acked.len() - to_relay.len();
        if skipped > 0 {
            self.stats.packets_skipped_already_relayed += skipped as u64;
            self.telemetry.record_error(
                t,
                format!("skipping {skipped} acknowledgements: packet messages are redundant"),
            );
        }
        if to_relay.is_empty() {
            self.worker_back_free = t;
            return;
        }

        // Acknowledgement data pull (the dominant cost in Fig. 12), through
        // the configured fetch strategy.
        let chunk_size = self.config.max_msgs_per_tx;
        let relay_seqs: Vec<Sequence> = to_relay.iter().map(|(p, _)| p.sequence).collect();
        let fetch = self.stages.fetcher.fetch_ack_data(
            &mut self.dst_rpc,
            t,
            dst_height,
            &self.path.port,
            &self.path.dst_channel,
            &relay_seqs,
            chunk_size,
        );
        for (seq, at) in &fetch.pull_times {
            self.telemetry.record(*seq, TransferStep::RecvDataPull, *at);
        }
        t = fetch.done_at;
        let ack_proofs = fetch.acks;

        let update_resp = self.dst_rpc.client_update_data(t);
        t = update_resp.ready_at;
        let Some(update) = update_resp.value else {
            self.worker_back_free = t;
            return;
        };
        let proof_height = Height::at(update.header.height);
        let update_msgs = vec![Msg::IbcUpdateClient {
            client_id: self.path.client_on_src.clone(),
            update: Box::new(update),
            signer: self.config.source_account.clone(),
        }];
        t = self.broadcast(ChainRole::Source, t, update_msgs, &[]);

        let to_relay_owned: Vec<(Packet, Acknowledgement)> =
            to_relay.into_iter().cloned().collect();
        for chunk in to_relay_owned.chunks(chunk_size) {
            t += self.config.build_cost_per_msg * chunk.len() as u64;
            let mut msgs = Vec::with_capacity(chunk.len());
            let mut chunk_seqs = Vec::with_capacity(chunk.len());
            for (packet, _) in chunk {
                let Some((ack, proof)) = ack_proofs.get(&packet.sequence.value()) else {
                    continue;
                };
                chunk_seqs.push(packet.sequence);
                self.telemetry
                    .record(packet.sequence, TransferStep::AckBuild, t);
                msgs.push(Msg::IbcAcknowledgement {
                    packet: packet.clone(),
                    acknowledgement: ack.clone(),
                    proof_acked: proof.clone(),
                    proof_height,
                    signer: self.config.source_account.clone(),
                });
            }
            if msgs.is_empty() {
                continue;
            }
            t = self.broadcast(ChainRole::Source, t, msgs, &chunk_seqs);
            self.stats.ack_txs_submitted += 1;
            for seq in &chunk_seqs {
                self.telemetry.record(*seq, TransferStep::AckBroadcast, t);
            }
        }
        self.worker_back_free = t;
    }

    /// Detects packets that expired before delivery and submits `MsgTimeout`
    /// for them on the source chain.
    fn relay_timeouts(&mut self, dest_height: u64, dest_time: SimTime, event_time: SimTime) {
        let expired: Vec<Packet> = self
            .pending_delivery
            .values()
            .filter(|p| p.has_timed_out(Height::at(dest_height), dest_time))
            .cloned()
            .collect();
        if expired.is_empty() {
            return;
        }
        let mut t = event_time.max(self.worker_back_free);
        let mut msgs = Vec::new();
        let mut seqs = Vec::new();
        for packet in expired.iter().take(self.config.max_msgs_per_tx) {
            let proof_resp = self.dst_rpc.non_receipt_proof(
                t,
                &self.path.port,
                &self.path.dst_channel,
                packet.sequence,
            );
            t = proof_resp.ready_at;
            let Some(proof) = proof_resp.value else {
                // Already received on the destination: not a timeout.
                self.pending_delivery.remove(&packet.sequence.value());
                continue;
            };
            msgs.push(Msg::IbcTimeout {
                packet: packet.clone(),
                proof_unreceived: proof,
                proof_height: Height::at(dest_height),
                signer: self.config.source_account.clone(),
            });
            seqs.push(packet.sequence);
        }
        if msgs.is_empty() {
            self.worker_back_free = t;
            return;
        }
        // The source-side client needs to know about the destination height
        // proving non-receipt.
        let update_resp = self.dst_rpc.client_update_data(t);
        t = update_resp.ready_at;
        if let Some(update) = update_resp.value {
            let update_msgs = vec![Msg::IbcUpdateClient {
                client_id: self.path.client_on_src.clone(),
                update: Box::new(update),
                signer: self.config.source_account.clone(),
            }];
            t = self.broadcast(ChainRole::Source, t, update_msgs, &[]);
        }
        t = self.broadcast(ChainRole::Source, t, msgs, &seqs);
        self.stats.timeout_txs_submitted += 1;
        for seq in seqs {
            self.pending_delivery.remove(&seq.value());
        }
        self.worker_back_free = t;
    }

    /// Builds, signs and broadcasts a transaction to one of the chains,
    /// handling account-sequence mismatches by re-syncing and retrying once.
    /// Returns the time at which the broadcast response was received.
    fn broadcast(
        &mut self,
        to: ChainRole,
        at: SimTime,
        msgs: Vec<Msg>,
        _seqs: &[Sequence],
    ) -> SimTime {
        let (account, fee_denom, seq) = match to {
            ChainRole::Source => (
                self.config.source_account.clone(),
                self.src_fee_denom.clone(),
                self.src_account_seq,
            ),
            ChainRole::Destination => (
                self.config.destination_account.clone(),
                self.dst_fee_denom.clone(),
                self.dst_account_seq,
            ),
        };
        let tx = Tx::new(account.clone(), seq, msgs.clone(), &fee_denom);
        let rpc = match to {
            ChainRole::Source => &mut self.src_rpc,
            ChainRole::Destination => &mut self.dst_rpc,
        };
        let resp = rpc.broadcast_tx_sync(at, &tx);
        let mut ready = resp.ready_at;
        match resp.value {
            Ok(_) => match to {
                ChainRole::Source => self.src_account_seq += 1,
                ChainRole::Destination => self.dst_account_seq += 1,
            },
            Err(BroadcastError::CheckTxFailed { log, .. })
                if log.contains("account sequence mismatch") =>
            {
                self.stats.broadcast_failures += 1;
                self.telemetry.record_error(ready, log);
                // Re-sync the sequence from the chain and retry once.
                let seq_resp = rpc.account_sequence(ready, &account);
                ready = seq_resp.ready_at;
                let new_seq = seq_resp.value;
                let retry_tx = Tx::new(account, new_seq, msgs, &fee_denom);
                let retry = rpc.broadcast_tx_sync(ready, &retry_tx);
                ready = retry.ready_at;
                match retry.value {
                    Ok(_) => match to {
                        ChainRole::Source => self.src_account_seq = new_seq + 1,
                        ChainRole::Destination => self.dst_account_seq = new_seq + 1,
                    },
                    Err(err) => {
                        self.stats.broadcast_failures += 1;
                        self.telemetry.record_error(ready, err.to_string());
                    }
                }
            }
            Err(err) => {
                self.stats.broadcast_failures += 1;
                self.telemetry.record_error(ready, err.to_string());
            }
        }
        ready
    }
}

impl std::fmt::Debug for Relayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Relayer")
            .field("id", &self.id)
            .field("stages", &self.stages)
            .field("packets_tracked", &self.telemetry.len())
            .field("stats", &self.stats)
            .finish()
    }
}
