//! The relayer instance: a thin driver over pluggable pipeline stages.
//!
//! The architecture mirrors Fig. 4 of the paper: a supervisor subscribed to
//! both chains' event streams hands each new block to the packet worker for
//! the affected channel direction; the worker pulls packet data and proofs
//! from the source chain's RPC endpoint, builds batched transactions of at
//! most 100 messages, and submits them through the chain endpoint, tracking
//! its own account sequence. Every step is timestamped into the telemetry
//! log.
//!
//! A relayer is a **simulated process**: the experiment runner never calls
//! pipeline code directly. Block commits only *notify* a process
//! ([`Relayer::notify_source_block`] / [`Relayer::notify_dest_block`], both
//! O(1) inbox pushes), and the process performs its work when the runner
//! delivers its next `RelayerWake` event through [`Relayer::wake`]. Each
//! process owns its two RPC endpoints — one lane per chain, each with its
//! own FIFO queue and backlog accounting — so RPC serialization is strictly
//! per-process: a fleet of dedicated per-channel processes pulls data
//! concurrently in virtual time where a single process serializes the same
//! work on one lane pair ([`Relayer::lane_stats`] exposes the accounting).
//!
//! Where the paper's Hermes hard-codes each of those decisions, this driver
//! delegates them to the trait stages of [`crate::stages`], instantiated
//! from the [`RelayerStrategy`](crate::strategy::RelayerStrategy) in the
//! relayer's [`RelayerConfig`]:
//!
//! * the [`EventSource`](crate::stages::EventSource) delivers block events
//!   (WebSocket push vs RPC polling);
//! * the [`DataFetcher`](crate::stages::DataFetcher) pulls packet data and
//!   proofs (sequential vs batched vs parallel);
//! * the [`SubmissionPolicy`](crate::stages::SubmissionPolicy) decides when
//!   pending packets are relayed (eager vs windowed vs adaptive);
//! * the [`CoordinationPolicy`](crate::stages::CoordinationPolicy) divides
//!   work between instances (none vs partition vs leases);
//! * the [`ChannelScheduler`](crate::stages::ChannelScheduler) divides one
//!   instance's attention between the channels it serves (fair-share vs
//!   priority vs dedicated-relayer-per-channel).
//!
//! Unlike the paper's testbed, a relayer serves a *list* of relay paths:
//! per-channel packet and acknowledgement bookkeeping is keyed by the
//! channel's index in that list, and each block's pending batches are
//! flushed channel by channel in the scheduler's order on the shared packet
//! worker. With a single channel and the default strategy the driver issues
//! exactly the same RPC calls at exactly the same simulated instants as the
//! paper's monolithic pipeline — `tests/relayer_strategies.rs` pins this
//! against golden fixtures.
//!
//! When the strategy's `packet_clear_interval` is non-zero the driver also
//! runs Hermes' packet-clear scan: every N blocks it checks chain state for
//! committed-but-unrelayed packets (e.g. those stranded by an oversized
//! WebSocket frame, §V) and relays them even though their events were never
//! delivered.
//!
//! The broadcast path itself is built around one
//! [`crate::sequence::SequenceTracker`] per chain (shared
//! by every channel), whose behaviour across the §V account-sequence race is
//! the strategy's [`SequenceTracking`] arm: the default committed-state
//! resync reproduces the paper's lossy recovery, while the mempool-aware
//! tracker holds a batch whenever the chain's check state straddled a commit
//! under the relayer's in-flight transactions.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use xcc_chain::msg::Msg;
use xcc_chain::tx::Tx;
use xcc_ibc::commitment::CommitmentProof;
use xcc_ibc::events as ibc_events;
use xcc_ibc::height::Height;
use xcc_ibc::ids::{ChainId, ChannelId, ClientId, PortId, Sequence};
use xcc_ibc::packet::Packet;
use xcc_rpc::endpoint::{BroadcastError, LaneStats, RpcEndpoint};
use xcc_sim::{prof, SimDuration, SimTime};
use xcc_tendermint::abci::Event;
use xcc_tendermint::hash::Hash;

use crate::config::RelayerConfig;
use crate::sequence::SequenceTracker;
use crate::stages::Stages;
use crate::strategy::SequenceTracking;
use crate::telemetry::{TelemetryLog, TransferStep};

/// One block-commit notification waiting in a relayer process's inbox.
///
/// Delivering a notification is O(1); all pipeline work it implies happens
/// at the process's next [`Relayer::wake`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum BlockNotice {
    /// The source chain committed the block at `height`.
    Source {
        /// Committed height.
        height: u64,
        /// Commit instant.
        committed_at: SimTime,
    },
    /// The destination chain committed the block at `height`.
    Dest {
        /// Committed height.
        height: u64,
        /// Commit instant.
        committed_at: SimTime,
    },
}

/// Which side of the relay path a chain plays for this relayer.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChainRole {
    /// The chain transfers originate from.
    Source,
    /// The chain transfers are delivered to.
    Destination,
}

/// The identifiers of one channel the relayer serves.
///
/// A path is keyed by its `(src_chain, dst_chain)` endpoints rather than an
/// implicit A/B orientation, so the same relayer type serves any edge of an
/// N-chain topology graph.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RelayPath {
    /// The chain transfers originate from on this path.
    pub src_chain: ChainId,
    /// The chain transfers are delivered to on this path.
    pub dst_chain: ChainId,
    /// The port on both ends (`transfer` for ICS-20).
    pub port: PortId,
    /// Channel end on the source chain.
    pub src_channel: ChannelId,
    /// Channel end on the destination chain.
    pub dst_channel: ChannelId,
    /// The client hosted on the destination chain that tracks the source.
    pub client_on_dst: ClientId,
    /// The client hosted on the source chain that tracks the destination.
    pub client_on_src: ClientId,
}

impl RelayPath {
    /// The role `chain` plays on this path, if it is one of the endpoints.
    pub fn role_of(&self, chain: &ChainId) -> Option<ChainRole> {
        if chain == &self.src_chain {
            Some(ChainRole::Source)
        } else if chain == &self.dst_chain {
            Some(ChainRole::Destination)
        } else {
            None
        }
    }
}

/// Aggregate counters describing one relayer's activity.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RelayerStats {
    /// Receive transactions submitted to the destination chain.
    pub recv_txs_submitted: u64,
    /// Acknowledgement transactions submitted to the source chain.
    pub ack_txs_submitted: u64,
    /// Timeout transactions submitted to the source chain.
    pub timeout_txs_submitted: u64,
    /// Packets skipped because the destination already received them
    /// (observed redundancy avoided before broadcast).
    pub packets_skipped_already_relayed: u64,
    /// Packets this instance observed but left to another instance under the
    /// configured coordination policy or channel scheduler.
    pub packets_left_to_peers: u64,
    /// Broadcast *attempts* that failed (sequence mismatches, full
    /// mempools…).
    ///
    /// Counting semantics (pinned by
    /// `relayer::tests::both_failed_attempts_of_one_submission_count_twice`):
    /// this counts failed RPC attempts, not logical submissions — a single
    /// logical submission whose initial attempt and post-resync retry both
    /// fail contributes **two**. The counter therefore reads as "how often
    /// did a broadcast come back rejected", matching what an operator grepping
    /// relayer logs for failed `broadcast_tx_sync` calls would see.
    pub broadcast_failures: u64,
    /// Blocks whose events could not be collected over the WebSocket.
    pub event_collection_failures: u64,
    /// Packets relayed by the packet-clear scan instead of event delivery.
    pub packets_cleared: u64,
}

/// How many missed block heights per chain a restarting relayer replays
/// into its own inbox (most recent first — older gaps are the packet-clear
/// scan's job). Bounds the restart backlog no matter how long the process
/// was down, so a crashed process's memory of the outage is O(1) and its
/// restart work is O(window).
pub const RESTART_REPLAY_WINDOW: u64 = 32;

/// A Hermes-like relayer serving one or more channels between two chains.
pub struct Relayer {
    id: usize,
    config: RelayerConfig,
    paths: Vec<RelayPath>,
    stages: Stages,
    src_rpc: RpcEndpoint,
    dst_rpc: RpcEndpoint,
    /// Account-sequence state towards the source chain — one tracker per
    /// chain, shared by every channel this instance serves, so the channels
    /// of a multi-channel deployment can never race each other on the
    /// relayer's own account.
    src_seq: SequenceTracker,
    /// Account-sequence state towards the destination chain.
    dst_seq: SequenceTracker,
    src_fee_denom: String,
    dst_fee_denom: String,
    worker_out_free: SimTime,
    worker_back_free: SimTime,
    telemetry: TelemetryLog,
    stats: RelayerStats,
    /// Packets collected but not yet relayed: `(channel index, committing
    /// source height, packet)` in arrival order (the submission policy may
    /// hold them across source blocks; data pulls are priced against the
    /// committing block).
    pending_recv: Vec<(usize, u64, Packet)>,
    /// Packets this relayer has seen sent but not yet observed as received,
    /// keyed by `(channel index, sequence)`, kept for timeout detection —
    /// and, by the clear scan, as the receive path's in-flight set.
    pending_delivery: BTreeMap<(usize, u64), Packet>,
    /// Packets whose receive transaction this relayer has broadcast
    /// successfully but not yet observed committed — the receive path's
    /// in-flight set, so the clear scan never re-relays a packet that is
    /// merely sitting in the destination chain's mempool (while packets
    /// whose broadcast was rejected stay eligible for a future clear).
    pending_recv_inflight: BTreeSet<(usize, u64)>,
    /// Packets whose acknowledgement this relayer has broadcast successfully
    /// but not yet observed committed — the acknowledgement path's in-flight
    /// set, the clear scan's counterpart filter on the return path.
    pending_ack: BTreeSet<(usize, u64)>,
    /// Receive transactions accepted into the destination mempool but not
    /// yet observed committed, by transaction hash, with the in-flight
    /// markers each carries. A transaction that commits **failed** (§V's
    /// account-sequence race striking at DeliverTx) emits no packet events,
    /// so watching the per-transaction commit result is the only way to
    /// learn that its packets never arrived: on observing a failed commit
    /// the markers are released from `pending_recv_inflight` so the next
    /// packet-clear scan picks the packets up again. Entries leave the list
    /// on *any* commit of their hash, keeping it bounded by the mempool.
    inflight_recv_txs: Vec<(Hash, Vec<(usize, u64)>)>,
    /// Acknowledgement transactions accepted into the source mempool but
    /// not yet observed committed — the return path's counterpart of
    /// `inflight_recv_txs`, releasing `pending_ack` markers when an
    /// acknowledgement transaction commits failed.
    inflight_ack_txs: Vec<(Hash, Vec<(usize, u64)>)>,
    /// Acknowledgements held back by mempool-aware sequence tracking because
    /// the source chain's check state straddled a commit; merged into the
    /// next destination block's acknowledgement batch.
    deferred_acks: Vec<(usize, Packet)>,
    /// Block-commit notifications not yet processed: the runner (or the
    /// synchronous `on_*_block` wrappers) drains this in FIFO order at the
    /// next [`wake`](Relayer::wake).
    inbox: VecDeque<BlockNotice>,
    /// Whether the process is currently crashed: notifications are absorbed
    /// into the O(1) missed-height slots instead of the inbox, and wakes are
    /// no-ops until [`restart`](Relayer::restart).
    crashed: bool,
    /// The newest source-chain block committed while crashed, if any —
    /// everything the process needs to rebuild a bounded inbox at restart.
    missed_src: Option<u64>,
    /// The newest destination-chain block committed while crashed, if any.
    missed_dst: Option<u64>,
    /// The highest source-chain height this process has handled, the low
    /// watermark of the restart replay.
    last_src_processed: u64,
    /// The highest destination-chain height this process has handled.
    last_dst_processed: u64,
}

impl Relayer {
    /// Creates a relayer serving a single channel — the paper's deployment.
    pub fn new(
        id: usize,
        config: RelayerConfig,
        path: RelayPath,
        src_rpc: RpcEndpoint,
        dst_rpc: RpcEndpoint,
    ) -> Self {
        Self::with_paths(id, config, vec![path], src_rpc, dst_rpc)
    }

    /// Creates a relayer instance with its own RPC connections to both
    /// chains' full nodes, serving `paths` (one entry per channel, in
    /// deployment channel order), building the pipeline stages from the
    /// strategy in `config`.
    ///
    /// # Panics
    ///
    /// Panics when `paths` is empty — a relayer must serve at least one
    /// channel.
    pub fn with_paths(
        id: usize,
        config: RelayerConfig,
        paths: Vec<RelayPath>,
        mut src_rpc: RpcEndpoint,
        mut dst_rpc: RpcEndpoint,
    ) -> Self {
        assert!(!paths.is_empty(), "a relayer serves at least one channel");
        let tracking = config.strategy.sequence_tracking;
        let src_seq = SequenceTracker::new(
            tracking,
            src_rpc
                .account_sequence(SimTime::ZERO, &config.source_account)
                .value,
        );
        let dst_seq = SequenceTracker::new(
            tracking,
            dst_rpc
                .account_sequence(SimTime::ZERO, &config.destination_account)
                .value,
        );
        let src_fee_denom = src_rpc.chain().borrow().app().fee_denom().to_string();
        let dst_fee_denom = dst_rpc.chain().borrow().app().fee_denom().to_string();
        let stages = config.strategy.build();
        Relayer {
            id,
            config,
            paths,
            stages,
            src_rpc,
            dst_rpc,
            src_seq,
            dst_seq,
            src_fee_denom,
            dst_fee_denom,
            worker_out_free: SimTime::ZERO,
            worker_back_free: SimTime::ZERO,
            telemetry: TelemetryLog::new(),
            stats: RelayerStats::default(),
            pending_recv: Vec::new(),
            pending_delivery: BTreeMap::new(),
            pending_recv_inflight: BTreeSet::new(),
            pending_ack: BTreeSet::new(),
            inflight_recv_txs: Vec::new(),
            inflight_ack_txs: Vec::new(),
            deferred_acks: Vec::new(),
            inbox: VecDeque::new(),
            crashed: false,
            missed_src: None,
            missed_dst: None,
            last_src_processed: 0,
            last_dst_processed: 0,
        }
    }

    /// This relayer's index (0-based).
    pub fn id(&self) -> usize {
        self.id
    }

    /// The primary relay path (channel 0).
    pub fn path(&self) -> &RelayPath {
        &self.paths[0]
    }

    /// Every relay path served, in deployment channel order.
    pub fn paths(&self) -> &[RelayPath] {
        &self.paths
    }

    /// The per-step telemetry collected so far.
    pub fn telemetry(&self) -> &TelemetryLog {
        &self.telemetry
    }

    /// Aggregate activity counters.
    pub fn stats(&self) -> &RelayerStats {
        &self.stats
    }

    /// The pipeline stages this instance runs.
    pub fn stages(&self) -> &Stages {
        &self.stages
    }

    /// The RPC endpoint this relayer uses towards the source chain.
    pub fn src_rpc(&self) -> &RpcEndpoint {
        &self.src_rpc
    }

    /// The RPC endpoint this relayer uses towards the destination chain.
    pub fn dst_rpc(&self) -> &RpcEndpoint {
        &self.dst_rpc
    }

    /// Accounting snapshots of this process's two RPC lanes (source-chain
    /// lane, destination-chain lane). Every process owns its lanes, so the
    /// numbers describe exactly the serialization *this* process
    /// experienced.
    pub fn lane_stats(&self) -> (LaneStats, LaneStats) {
        (self.src_rpc.lane_stats(), self.dst_rpc.lane_stats())
    }

    /// The channel this process is pinned to, if the deployment dedicated it
    /// to one (see `RelayerConfig::channel_assignment`).
    pub fn channel_assignment(&self) -> Option<usize> {
        self.config.channel_assignment
    }

    /// The relayer-side share of the event delivery delay: fixed processing
    /// overhead plus the per-instance stagger modelling independently
    /// scheduled relayer processes. The stagger indexes by the process's
    /// replica id within its coordination group (like
    /// [`assigned`](Relayer::assigned)), so a dedicated fleet's per-channel
    /// replica group sees exactly the staggers a same-sized shared
    /// deployment would — fleet position across channels never skews event
    /// delivery.
    fn relayer_delay(&self) -> SimDuration {
        let replica = self.config.coordination_id.unwrap_or(self.id);
        self.config.event_processing_overhead + self.config.per_instance_stagger * replica as u64
    }

    /// Whether this instance relays `sequence` under the coordination
    /// policy. A dedicated-fleet process coordinates under its replica id
    /// within the channel's replica group (`config.coordination_id`), not
    /// its global process id.
    fn assigned(&self, src_height: u64, sequence: Sequence) -> bool {
        self.stages.coordination.assigned(
            self.config.coordination_id.unwrap_or(self.id),
            self.config.instances.max(1),
            src_height,
            sequence,
        )
    }

    /// Whether this instance serves the channel at `channel` at all: a
    /// pinned channel assignment (dedicated fleets) wins, otherwise the
    /// strategy's channel scheduler decides.
    fn serves_channel(&self, channel: usize) -> bool {
        if let Some(assigned) = self.config.channel_assignment {
            return channel == assigned;
        }
        self.stages
            .scheduler
            .serves(self.id, self.config.instances.max(1), channel)
    }

    /// The channels this instance flushes for the block at `height`, in
    /// scheduler order, unserved channels filtered out.
    fn served_flush_order(&self, height: u64) -> Vec<usize> {
        self.stages
            .scheduler
            .flush_order(height, self.paths.len())
            .into_iter()
            .filter(|ch| self.serves_channel(*ch))
            .collect()
    }

    /// The index of the served channel whose **source** end `event` belongs
    /// to, if any.
    fn src_channel_of(&self, event: &Event) -> Option<usize> {
        self.paths
            .iter()
            .position(|p| ibc_events::is_for_channel(event, &p.port, &p.src_channel))
    }

    /// The index of the served channel whose **destination** end `event`
    /// belongs to, if any.
    fn dst_channel_of(&self, event: &Event) -> Option<usize> {
        self.paths
            .iter()
            .position(|p| ibc_events::is_for_channel(event, &p.port, &p.dst_channel))
    }

    /// Whether the packet-clear scan runs at `height`.
    fn clear_due(&self, height: u64) -> bool {
        let interval = self.config.strategy.packet_clear_interval;
        interval > 0 && height.is_multiple_of(interval)
    }

    /// Enqueues a source-chain block-commit notification. O(1): all pipeline
    /// work happens at the next [`wake`](Relayer::wake).
    ///
    /// While the process is crashed the notification collapses into the O(1)
    /// missed-height slot instead of the inbox: a long outage can neither
    /// grow the crashed process's memory unboundedly nor be silently
    /// forgotten — [`restart`](Relayer::restart) replays the most recent
    /// [`RESTART_REPLAY_WINDOW`] missed heights from the slot.
    pub fn notify_source_block(&mut self, height: u64, committed_at: SimTime) {
        if self.crashed {
            self.missed_src = Some(self.missed_src.unwrap_or(0).max(height));
            return;
        }
        self.inbox.push_back(BlockNotice::Source {
            height,
            committed_at,
        });
    }

    /// Enqueues a destination-chain block-commit notification. O(1): all
    /// pipeline work happens at the next [`wake`](Relayer::wake). Crashed
    /// processes absorb it into the missed-height slot; see
    /// [`notify_source_block`](Relayer::notify_source_block).
    pub fn notify_dest_block(&mut self, height: u64, committed_at: SimTime) {
        if self.crashed {
            self.missed_dst = Some(self.missed_dst.unwrap_or(0).max(height));
            return;
        }
        self.inbox.push_back(BlockNotice::Dest {
            height,
            committed_at,
        });
    }

    /// Whether this process has block notifications waiting to be processed.
    pub fn has_pending_notices(&self) -> bool {
        !self.inbox.is_empty()
    }

    /// Runs this relayer process: drains the inbox in FIFO order, performing
    /// the pipeline work each block notification implies on this process's
    /// own virtual-time lane (its per-chain RPC endpoints and worker
    /// watermarks — nothing here touches another process's state).
    ///
    /// Returns the instant at which the process next needs a wake *without*
    /// a block notification, or `None` when every obligation is tied to a
    /// future block commit (the common case: held batches and deferred
    /// acknowledgements can only make progress after the next commit, which
    /// arrives as its own notification). The runner schedules a
    /// `RelayerWake` event for a `Some` return. Wakes are idempotent: waking
    /// with an empty inbox is a no-op, so spurious wakes are harmless.
    pub fn wake(&mut self, _now: SimTime) -> Option<SimTime> {
        if self.crashed {
            // A crashed process does no work; pending wakes fall through
            // harmlessly, like wakes delivered to an empty inbox.
            return None;
        }
        while let Some(notice) = self.inbox.pop_front() {
            match notice {
                BlockNotice::Source {
                    height,
                    committed_at,
                } => self.handle_source_block(height, committed_at),
                BlockNotice::Dest {
                    height,
                    committed_at,
                } => self.handle_dest_block(height, committed_at),
            }
        }
        None
    }

    /// Synchronous convenience wrapper (notify + immediate wake) for tests
    /// and hand-driven setups. The experiment runner instead notifies every
    /// process and schedules per-process `RelayerWake` events.
    pub fn on_source_block(&mut self, height: u64, commit_time: SimTime) {
        self.notify_source_block(height, commit_time);
        self.wake(commit_time);
    }

    /// Synchronous convenience wrapper (notify + immediate wake); see
    /// [`on_source_block`](Relayer::on_source_block).
    pub fn on_dest_block(&mut self, height: u64, commit_time: SimTime) {
        self.notify_dest_block(height, commit_time);
        self.wake(commit_time);
    }

    /// Whether the process is currently crashed (between a
    /// [`crash`](Relayer::crash) and the matching
    /// [`restart`](Relayer::restart)).
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// Crashes the process at `now`: every piece of in-memory pipeline state
    /// — pending packet queues, in-flight sets, deferred acknowledgements,
    /// the inbox and both [`SequenceTracker`] caches — is lost, exactly as
    /// for a killed OS process. What survives is what lives *outside* the
    /// process: chain state, and the experiment's measurement tape (the
    /// telemetry log and stats aggregate the process's lifetime across
    /// incarnations, the way a scrape target's history outlives one
    /// process). Until [`restart`](Relayer::restart), notifications collapse
    /// into the missed-height slots and wakes are no-ops.
    pub fn crash(&mut self, now: SimTime) {
        self.crashed = true;
        self.pending_recv.clear();
        self.pending_delivery.clear();
        self.pending_recv_inflight.clear();
        self.pending_ack.clear();
        self.inflight_recv_txs.clear();
        self.inflight_ack_txs.clear();
        self.deferred_acks.clear();
        self.inbox.clear();
        self.missed_src = None;
        self.missed_dst = None;
        self.telemetry
            .record_error(now, format!("relayer process {} crashed", self.id));
    }

    /// Restarts the crashed process cold at `now`: both account-sequence
    /// trackers are re-seeded from the chains' committed state over this
    /// process's own RPC lanes (the cold-cache resync a real relayer does at
    /// boot), the worker watermarks move to `now`, and the most recent
    /// [`RESTART_REPLAY_WINDOW`] block heights missed on each chain are
    /// replayed into the inbox so the process catches up through its normal
    /// wake path. Gaps older than the window are left to the packet-clear
    /// scan, which reads chain state rather than events. A no-op on a
    /// process that is not crashed.
    pub fn restart(&mut self, now: SimTime) {
        if !self.crashed {
            return;
        }
        self.crashed = false;
        let tracking = self.config.strategy.sequence_tracking;
        self.src_seq = SequenceTracker::new(
            tracking,
            self.src_rpc
                .account_sequence(now, &self.config.source_account)
                .value,
        );
        self.dst_seq = SequenceTracker::new(
            tracking,
            self.dst_rpc
                .account_sequence(now, &self.config.destination_account)
                .value,
        );
        self.worker_out_free = now;
        self.worker_back_free = now;
        self.telemetry
            .record_error(now, format!("relayer process {} restarted", self.id));
        // Bounded replay: the missed slots carry only the newest height per
        // chain, so the backlog is the window, never the outage length.
        if let Some(newest) = self.missed_src.take() {
            let from =
                (self.last_src_processed + 1).max(newest.saturating_sub(RESTART_REPLAY_WINDOW - 1));
            for height in from..=newest {
                self.inbox.push_back(BlockNotice::Source {
                    height,
                    committed_at: now,
                });
            }
        }
        if let Some(newest) = self.missed_dst.take() {
            let from =
                (self.last_dst_processed + 1).max(newest.saturating_sub(RESTART_REPLAY_WINDOW - 1));
            for height in from..=newest {
                self.inbox.push_back(BlockNotice::Dest {
                    height,
                    committed_at: now,
                });
            }
        }
    }

    /// Handles a newly committed block on the **source** chain: extracts
    /// send-packet events, pulls packet data and proofs, and submits receive
    /// transactions to the destination chain. Also records acknowledgement
    /// confirmations observed in the block, and — when the strategy's clear
    /// interval is due — scans chain state for packets whose events were
    /// never delivered.
    fn handle_source_block(&mut self, height: u64, commit_time: SimTime) {
        self.last_src_processed = self.last_src_processed.max(height);
        // The commit may have reset the source chain's check state under our
        // in-flight window; a mempool-aware tracker reconciles before the
        // next broadcast towards that chain.
        self.src_seq.note_commit();
        let delay = self.relayer_delay();
        let (event_time, collected) =
            self.stages
                .src_events
                .collect(&mut self.src_rpc, height, commit_time, delay);
        match collected {
            Ok(batch) => self.process_source_events(height, commit_time, event_time, &batch),
            Err(message) => {
                self.stats.event_collection_failures += 1;
                self.telemetry.record_error(event_time, message);
            }
        }
        if self.clear_due(height) {
            self.clear_unrelayed_recvs(height, event_time);
        }
    }

    fn process_source_events(
        &mut self,
        height: u64,
        commit_time: SimTime,
        event_time: SimTime,
        batch: &crate::stages::BlockEventBatch,
    ) {
        for (hash, code, events) in batch.tx_events.iter() {
            self.note_committed_tx(ChainRole::Source, hash, *code, event_time);
            if *code != 0 {
                continue;
            }
            for event in events {
                let Some(channel) = self.src_channel_of(event) else {
                    continue;
                };
                match event.kind.as_str() {
                    ibc_events::SEND_PACKET => {
                        if let Some(packet) = ibc_events::packet_from_event(event) {
                            if !self.serves_channel(channel) {
                                self.stats.packets_left_to_peers += 1;
                                continue;
                            }
                            self.telemetry.record_on(
                                channel as u64,
                                packet.sequence,
                                TransferStep::TransferMsgExtraction,
                                event_time,
                            );
                            self.telemetry.record_on(
                                channel as u64,
                                packet.sequence,
                                TransferStep::TransferConfirmation,
                                event_time,
                            );
                            if self.assigned(height, packet.sequence) {
                                self.pending_delivery
                                    .insert((channel, packet.sequence.value()), packet.clone());
                                self.pending_recv.push((channel, height, packet));
                            } else {
                                self.stats.packets_left_to_peers += 1;
                            }
                        }
                    }
                    ibc_events::ACK_PACKET => {
                        if let Some(packet) = ibc_events::packet_from_event(event) {
                            if !self.serves_channel(channel) {
                                continue;
                            }
                            self.telemetry.record_on(
                                channel as u64,
                                packet.sequence,
                                TransferStep::AckMsgExtraction,
                                commit_time,
                            );
                            self.telemetry.record_on(
                                channel as u64,
                                packet.sequence,
                                TransferStep::AckConfirmation,
                                commit_time,
                            );
                            // The acknowledgement is committed: the packet's
                            // life cycle is over on every in-flight set.
                            self.pending_ack.remove(&(channel, packet.sequence.value()));
                            self.pending_recv_inflight
                                .remove(&(channel, packet.sequence.value()));
                            self.pending_delivery
                                .remove(&(channel, packet.sequence.value()));
                        }
                    }
                    ibc_events::TIMEOUT_PACKET => {
                        if let Some(packet) = ibc_events::packet_from_event(event) {
                            self.pending_delivery
                                .remove(&(channel, packet.sequence.value()));
                            self.pending_recv_inflight
                                .remove(&(channel, packet.sequence.value()));
                        }
                    }
                    _ => {}
                }
            }
        }

        if self.pending_recv.is_empty() {
            return;
        }
        if !self
            .stages
            .submission
            .should_flush(self.pending_recv.len(), self.config.max_msgs_per_tx)
        {
            return;
        }
        let pending = std::mem::take(&mut self.pending_recv);
        for channel in self.served_flush_order(height) {
            let batch: Vec<(u64, Packet)> = pending
                .iter()
                .filter(|(ch, _, _)| *ch == channel)
                .map(|(_, h, p)| (*h, p.clone()))
                .collect();
            if batch.is_empty() {
                continue;
            }
            self.relay_recv_batch(channel, event_time, batch);
        }
    }

    /// Settles the in-flight transaction list for `on` against one
    /// committed transaction: a tracked transaction leaves the list as soon
    /// as its hash commits, and a **failed** commit (code != 0 — §V's
    /// account-sequence race striking at DeliverTx rather than CheckTx)
    /// additionally releases the packet markers it carried. A failed
    /// transaction emits no packet events, so without this release its
    /// packets would stay marked "in flight" forever and the packet-clear
    /// scan — which deliberately skips in-flight packets — could never
    /// rescue them.
    fn note_committed_tx(&mut self, on: ChainRole, hash: &Hash, code: u32, at: SimTime) {
        let (txs, markers_in_flight) = match on {
            ChainRole::Source => (&mut self.inflight_ack_txs, &mut self.pending_ack),
            ChainRole::Destination => {
                (&mut self.inflight_recv_txs, &mut self.pending_recv_inflight)
            }
        };
        let Some(pos) = txs.iter().position(|(h, _)| h == hash) else {
            return;
        };
        let (_, markers) = txs.remove(pos);
        if code == 0 {
            return;
        }
        for marker in &markers {
            markers_in_flight.remove(marker);
        }
        let kind = match on {
            ChainRole::Source => "acknowledgement",
            ChainRole::Destination => "receive",
        };
        self.telemetry.record_error(
            at,
            format!(
                "{kind} tx committed with code {code}: released {} in-flight packet \
                 markers to the clear scan",
                markers.len()
            ),
        );
    }

    /// Handles a newly committed block on the **destination** chain: records
    /// receive confirmations, pulls acknowledgement data, submits
    /// acknowledgement transactions back to the source chain, and submits
    /// timeouts for expired undelivered packets.
    fn handle_dest_block(&mut self, height: u64, commit_time: SimTime) {
        self.last_dst_processed = self.last_dst_processed.max(height);
        self.dst_seq.note_commit();
        let delay = self.relayer_delay();
        let (event_time, collected) =
            self.stages
                .dst_events
                .collect(&mut self.dst_rpc, height, commit_time, delay);
        let mut acked_packets: Vec<(usize, Packet)> = Vec::new();
        let mut events_delivered = true;
        match collected {
            Ok(batch) => {
                for (hash, code, events) in batch.tx_events.iter() {
                    self.note_committed_tx(ChainRole::Destination, hash, *code, event_time);
                    if *code != 0 {
                        continue;
                    }
                    for event in events {
                        let Some(channel) = self.dst_channel_of(event) else {
                            continue;
                        };
                        if event.kind != ibc_events::WRITE_ACK || !self.serves_channel(channel) {
                            continue;
                        }
                        if let Some(packet) = ibc_events::packet_from_event(event) {
                            self.telemetry.record_on(
                                channel as u64,
                                packet.sequence,
                                TransferStep::RecvMsgExtraction,
                                event_time,
                            );
                            self.telemetry.record_on(
                                channel as u64,
                                packet.sequence,
                                TransferStep::RecvConfirmation,
                                event_time,
                            );
                            self.pending_delivery
                                .remove(&(channel, packet.sequence.value()));
                            self.pending_recv_inflight
                                .remove(&(channel, packet.sequence.value()));
                            // The packet was already counted towards
                            // `packets_left_to_peers` on the source side if it
                            // belongs to another instance; here the assignment
                            // only routes the acknowledgement work.
                            if self.assigned(height, packet.sequence) {
                                acked_packets.push((channel, packet));
                            }
                        }
                    }
                }
            }
            Err(message) => {
                self.stats.event_collection_failures += 1;
                self.telemetry.record_error(event_time, message);
                events_delivered = false;
            }
        }

        // A failed event collection leaves the supervisor without a block to
        // hand to the packet workers: neither acknowledgements nor timeouts
        // are relayed for it, exactly like the pre-knob pipeline (§V's
        // "neither relayed nor timed out"). Only the clear scan — which
        // reads chain state, not events — still runs.
        if events_delivered {
            // Acknowledgements held back by a straddled source commit ride
            // along with this block's batch (mempool-aware tracking only;
            // the vector is always empty otherwise).
            if !self.deferred_acks.is_empty() {
                let mut held = std::mem::take(&mut self.deferred_acks);
                held.append(&mut acked_packets);
                acked_packets = held;
            }
            let dest_height = height;
            let dest_time = commit_time;
            for channel in self.served_flush_order(height) {
                let batch: Vec<Packet> = acked_packets
                    .iter()
                    .filter(|(ch, _)| *ch == channel)
                    .map(|(_, p)| p.clone())
                    .collect();
                if !batch.is_empty() {
                    self.relay_ack_batch(channel, dest_height, event_time, batch);
                }
                self.relay_timeouts(channel, dest_height, dest_time, event_time);
            }
        }
        if self.clear_due(height) {
            self.clear_unrelayed_acks(height, event_time);
        }
    }

    /// Filters out packets the destination already received, then pulls
    /// data, builds and broadcasts `MsgRecvPacket` batches for one channel.
    fn relay_recv_batch(
        &mut self,
        channel: usize,
        event_time: SimTime,
        packets: Vec<(u64, Packet)>,
    ) {
        let path = self.paths[channel].clone();
        let mut t = event_time.max(self.worker_out_free);

        // Skip packets the destination has already received (another relayer
        // beat us to them).
        let sequences: Vec<Sequence> = packets.iter().map(|(_, p)| p.sequence).collect();
        let unreceived_resp =
            self.dst_rpc
                .unreceived_packets(t, &path.port, &path.dst_channel, &sequences);
        t = unreceived_resp.ready_at;
        let unreceived: BTreeSet<Sequence> = unreceived_resp.value.into_iter().collect();
        let to_relay: Vec<(u64, Packet)> = packets
            .iter()
            .filter(|(_, p)| unreceived.contains(&p.sequence))
            .cloned()
            .collect();
        let skipped = packets.len() - to_relay.len();
        if skipped > 0 {
            self.stats.packets_skipped_already_relayed += skipped as u64;
            self.telemetry.record_error(
                t,
                format!("skipping {skipped} packets: packet messages are redundant"),
            );
        }
        if to_relay.is_empty() {
            self.worker_out_free = t;
            return;
        }
        self.deliver_recv_batch(channel, t, to_relay);
    }

    /// The shared delivery tail of the receive path: pulls packet data and
    /// proofs, updates the destination-side client and broadcasts the
    /// `MsgRecvPacket` chunks. `packets` must already be filtered to those
    /// the destination has not received. Returns the number of packets whose
    /// receive transaction was accepted into the destination mempool.
    fn deliver_recv_batch(
        &mut self,
        channel: usize,
        start: SimTime,
        packets: Vec<(u64, Packet)>,
    ) -> u64 {
        // Mempool-aware sequence tracking: when the destination's check
        // state straddled a commit under our in-flight window, hold the
        // batch — it rejoins the pending queue and flushes after the window
        // drains, instead of burning on a duplicate sequence.
        let (t_ready, ready) = self.ensure_sequence_ready(ChainRole::Destination, start);
        if !ready {
            self.pending_recv
                .extend(packets.into_iter().map(|(h, p)| (channel, h, p)));
            self.worker_out_free = t_ready;
            return 0;
        }
        let path = self.paths[channel].clone();
        let mut t = t_ready;

        // Data pull through the configured fetch strategy, one fetch per
        // origin block so every packet's pull is priced against the block
        // that committed it (with eager submission there is exactly one
        // group: the block just handled).
        let chunk_size = self.config.max_msgs_per_tx;
        let mut proofs: BTreeMap<u64, CommitmentProof> = BTreeMap::new();
        let mut group_start = 0usize;
        while group_start < packets.len() {
            let group_height = packets[group_start].0;
            let group_end = packets[group_start..]
                .iter()
                .position(|(h, _)| *h != group_height)
                .map(|offset| group_start + offset)
                .unwrap_or(packets.len());
            let group_seqs: Vec<Sequence> = packets[group_start..group_end]
                .iter()
                .map(|(_, p)| p.sequence)
                .collect();
            let fetch = self.stages.fetcher.fetch_packet_data(
                &mut self.src_rpc,
                t,
                group_height,
                &path.port,
                &path.src_channel,
                &group_seqs,
                chunk_size,
            );
            for (seq, at) in &fetch.pull_times {
                self.telemetry
                    .record_on(channel as u64, *seq, TransferStep::TransferDataPull, *at);
            }
            t = fetch.done_at;
            proofs.extend(fetch.proofs);
            group_start = group_end;
        }

        // Client update for the destination-side client, then build+broadcast.
        let update_resp = self.src_rpc.client_update_data(t);
        t = update_resp.ready_at;
        let Some(update) = update_resp.value else {
            self.worker_out_free = t;
            return 0;
        };
        let proof_height = Height::at(update.header.height);

        // The client update travels in its own transaction ahead of the
        // packet batches.
        let update_tx_msgs = vec![Msg::IbcUpdateClient {
            client_id: path.client_on_dst.clone(),
            update: Box::new(update),
            signer: self.config.destination_account.clone(),
        }];
        (t, _) = self.broadcast(ChainRole::Destination, t, update_tx_msgs);

        let mut delivered = 0u64;
        for chunk in packets.chunks(chunk_size) {
            t += self.config.build_cost_per_msg * chunk.len() as u64;
            let mut msgs = Vec::with_capacity(chunk.len());
            let mut chunk_seqs = Vec::with_capacity(chunk.len());
            for (_, packet) in chunk {
                let Some(proof) = proofs.get(&packet.sequence.value()) else {
                    continue;
                };
                chunk_seqs.push(packet.sequence);
                self.telemetry.record_on(
                    channel as u64,
                    packet.sequence,
                    TransferStep::RecvBuild,
                    t,
                );
                msgs.push(Msg::IbcRecvPacket {
                    packet: packet.clone(),
                    proof_commitment: proof.clone(),
                    proof_height,
                    signer: self.config.destination_account.clone(),
                });
            }
            if msgs.is_empty() {
                continue;
            }
            let tx_hash;
            (t, tx_hash) = self.broadcast(ChainRole::Destination, t, msgs);
            self.stats.recv_txs_submitted += 1;
            for seq in &chunk_seqs {
                self.telemetry
                    .record_on(channel as u64, *seq, TransferStep::RecvBroadcast, t);
            }
            if let Some(hash) = tx_hash {
                // In flight: the clear scan must not re-relay these until
                // the transaction's commit result is known. A rejected
                // chunk stays eligible for a future clear.
                let markers: Vec<(usize, u64)> = chunk_seqs
                    .iter()
                    .map(|seq| (channel, seq.value()))
                    .collect();
                for marker in &markers {
                    self.pending_recv_inflight.insert(*marker);
                }
                delivered += markers.len() as u64;
                self.inflight_recv_txs.push((hash, markers));
            }
        }
        self.worker_out_free = t;
        delivered
    }

    /// Pulls acknowledgement data, builds and broadcasts `MsgAcknowledgement`
    /// batches back to the source chain for one channel. Returns the number
    /// of acknowledgements accepted into the source mempool.
    fn relay_ack_batch(
        &mut self,
        channel: usize,
        dst_height: u64,
        event_time: SimTime,
        acked: Vec<Packet>,
    ) -> u64 {
        // Mempool-aware sequence tracking: a straddled source commit defers
        // the acknowledgements to the next destination block's batch.
        let start = event_time.max(self.worker_back_free);
        let (t_ready, ready) = self.ensure_sequence_ready(ChainRole::Source, start);
        if !ready {
            self.deferred_acks
                .extend(acked.into_iter().map(|p| (channel, p)));
            self.worker_back_free = t_ready;
            return 0;
        }
        let path = self.paths[channel].clone();
        let mut t = t_ready;

        // Skip acknowledgements whose commitments are already cleared on the
        // source chain (another relayer acknowledged them first).
        let sequences: Vec<Sequence> = acked.iter().map(|p| p.sequence).collect();
        let unacked_resp =
            self.src_rpc
                .unacknowledged_packets(t, &path.port, &path.src_channel, &sequences);
        t = unacked_resp.ready_at;
        let unacked: BTreeSet<Sequence> = unacked_resp.value.into_iter().collect();
        let to_relay: Vec<Packet> = acked
            .iter()
            .filter(|p| unacked.contains(&p.sequence))
            .cloned()
            .collect();
        let skipped = acked.len() - to_relay.len();
        if skipped > 0 {
            self.stats.packets_skipped_already_relayed += skipped as u64;
            self.telemetry.record_error(
                t,
                format!("skipping {skipped} acknowledgements: packet messages are redundant"),
            );
        }
        if to_relay.is_empty() {
            self.worker_back_free = t;
            return 0;
        }

        // Acknowledgement data pull (the dominant cost in Fig. 12), through
        // the configured fetch strategy.
        let chunk_size = self.config.max_msgs_per_tx;
        let relay_seqs: Vec<Sequence> = to_relay.iter().map(|p| p.sequence).collect();
        let fetch = self.stages.fetcher.fetch_ack_data(
            &mut self.dst_rpc,
            t,
            dst_height,
            &path.port,
            &path.dst_channel,
            &relay_seqs,
            chunk_size,
        );
        for (seq, at) in &fetch.pull_times {
            self.telemetry
                .record_on(channel as u64, *seq, TransferStep::RecvDataPull, *at);
        }
        t = fetch.done_at;
        let ack_proofs = fetch.acks;

        let update_resp = self.dst_rpc.client_update_data(t);
        t = update_resp.ready_at;
        let Some(update) = update_resp.value else {
            self.worker_back_free = t;
            return 0;
        };
        let proof_height = Height::at(update.header.height);
        let update_msgs = vec![Msg::IbcUpdateClient {
            client_id: path.client_on_src.clone(),
            update: Box::new(update),
            signer: self.config.source_account.clone(),
        }];
        (t, _) = self.broadcast(ChainRole::Source, t, update_msgs);

        let mut acked_submitted = 0u64;
        for chunk in to_relay.chunks(chunk_size) {
            t += self.config.build_cost_per_msg * chunk.len() as u64;
            let mut msgs = Vec::with_capacity(chunk.len());
            let mut chunk_seqs = Vec::with_capacity(chunk.len());
            for packet in chunk {
                let Some((ack, proof)) = ack_proofs.get(&packet.sequence.value()) else {
                    continue;
                };
                chunk_seqs.push(packet.sequence);
                self.telemetry.record_on(
                    channel as u64,
                    packet.sequence,
                    TransferStep::AckBuild,
                    t,
                );
                msgs.push(Msg::IbcAcknowledgement {
                    packet: packet.clone(),
                    acknowledgement: ack.clone(),
                    proof_acked: proof.clone(),
                    proof_height,
                    signer: self.config.source_account.clone(),
                });
            }
            if msgs.is_empty() {
                continue;
            }
            let tx_hash;
            (t, tx_hash) = self.broadcast(ChainRole::Source, t, msgs);
            self.stats.ack_txs_submitted += 1;
            for seq in &chunk_seqs {
                self.telemetry
                    .record_on(channel as u64, *seq, TransferStep::AckBroadcast, t);
            }
            if let Some(hash) = tx_hash {
                // In flight: the clear scan must not re-acknowledge these
                // until the transaction's commit result is known. A
                // rejected chunk stays eligible for a future clear.
                let markers: Vec<(usize, u64)> = chunk_seqs
                    .iter()
                    .map(|seq| (channel, seq.value()))
                    .collect();
                for marker in &markers {
                    self.pending_ack.insert(*marker);
                }
                acked_submitted += markers.len() as u64;
                self.inflight_ack_txs.push((hash, markers));
            }
        }
        self.worker_back_free = t;
        acked_submitted
    }

    /// Detects packets of one channel that expired before delivery and
    /// submits `MsgTimeout` for them on the source chain.
    fn relay_timeouts(
        &mut self,
        channel: usize,
        dest_height: u64,
        dest_time: SimTime,
        event_time: SimTime,
    ) {
        let path = self.paths[channel].clone();
        let expired: Vec<Packet> = self
            .pending_delivery
            .iter()
            .filter(|((ch, _), p)| {
                *ch == channel && p.has_timed_out(Height::at(dest_height), dest_time)
            })
            .map(|(_, p)| p.clone())
            .collect();
        if expired.is_empty() {
            return;
        }
        // Mempool-aware sequence tracking: expired packets stay in
        // `pending_delivery` and are re-examined next block, so a straddled
        // source commit simply delays the timeout submission.
        let start = event_time.max(self.worker_back_free);
        let (t_ready, ready) = self.ensure_sequence_ready(ChainRole::Source, start);
        if !ready {
            self.worker_back_free = t_ready;
            return;
        }
        let mut t = t_ready;
        let mut msgs = Vec::new();
        let mut seqs = Vec::new();
        for packet in expired.iter().take(self.config.max_msgs_per_tx) {
            let proof_resp =
                self.dst_rpc
                    .non_receipt_proof(t, &path.port, &path.dst_channel, packet.sequence);
            t = proof_resp.ready_at;
            let Some(proof) = proof_resp.value else {
                // Already received on the destination: not a timeout.
                self.pending_delivery
                    .remove(&(channel, packet.sequence.value()));
                continue;
            };
            msgs.push(Msg::IbcTimeout {
                packet: packet.clone(),
                proof_unreceived: proof,
                proof_height: Height::at(dest_height),
                signer: self.config.source_account.clone(),
            });
            seqs.push(packet.sequence);
        }
        if msgs.is_empty() {
            self.worker_back_free = t;
            return;
        }
        // The source-side client needs to know about the destination height
        // proving non-receipt.
        let update_resp = self.dst_rpc.client_update_data(t);
        t = update_resp.ready_at;
        if let Some(update) = update_resp.value {
            let update_msgs = vec![Msg::IbcUpdateClient {
                client_id: path.client_on_src.clone(),
                update: Box::new(update),
                signer: self.config.source_account.clone(),
            }];
            (t, _) = self.broadcast(ChainRole::Source, t, update_msgs);
        }
        (t, _) = self.broadcast(ChainRole::Source, t, msgs);
        self.stats.timeout_txs_submitted += 1;
        for seq in seqs {
            self.pending_delivery.remove(&(channel, seq.value()));
        }
        self.worker_back_free = t;
    }

    /// The receive half of Hermes' packet-clear scan: for every served
    /// channel, finds packets that are committed on the source chain, still
    /// outstanding, assigned to this instance and unknown to the pending
    /// queue — i.e. packets whose send events were never delivered (§V) —
    /// and relays them from chain state.
    fn clear_unrelayed_recvs(&mut self, src_height: u64, start: SimTime) {
        for channel in self.served_flush_order(src_height) {
            let path = self.paths[channel].clone();
            // Chain-state scan: still-committed (unacknowledged, not timed
            // out) packets on the source end. The relayer co-hosts a full
            // node, so the scan itself is local; the cross-node queries
            // below pay RPC cost as usual.
            let candidates: Vec<Sequence> = {
                let chain = self.src_rpc.chain().borrow();
                let ibc = chain.app().ibc();
                let sent = ibc.sent_sequences(&path.port, &path.src_channel);
                ibc.unacknowledged_packets(&path.port, &path.src_channel, &sent)
            }
            .into_iter()
            .inspect(|_| prof::bump_clear_scan_visit())
            .filter(|seq| self.assigned(src_height, *seq))
            // Skip packets already in this instance's hands: queued for a
            // later flush, or successfully broadcast and awaiting
            // commitment. Packets whose send events were never observed and
            // packets whose receive broadcast was rejected — the genuinely
            // stranded ones — survive this filter.
            .filter(|seq| {
                !self.pending_recv_inflight.contains(&(channel, seq.value()))
                    && !self
                        .pending_recv
                        .iter()
                        .any(|(ch, _, p)| *ch == channel && p.sequence == *seq)
            })
            .collect();
            if candidates.is_empty() {
                continue;
            }
            // Which of those has the destination not received yet?
            let t = start.max(self.worker_out_free);
            let unreceived_resp =
                self.dst_rpc
                    .unreceived_packets(t, &path.port, &path.dst_channel, &candidates);
            let t = unreceived_resp.ready_at;
            let to_clear: Vec<(u64, Packet)> = {
                let chain = self.src_rpc.chain().borrow();
                let ibc = chain.app().ibc();
                unreceived_resp
                    .value
                    .iter()
                    .filter_map(|seq| ibc.sent_packet(&path.port, &path.src_channel, *seq))
                    .map(|p| (src_height, p.clone()))
                    .collect()
            };
            if to_clear.is_empty() {
                self.worker_out_free = t;
                continue;
            }
            self.telemetry.record_error(
                t,
                format!(
                    "clearing {} pending packets on {}",
                    to_clear.len(),
                    path.src_channel
                ),
            );
            for (_, packet) in &to_clear {
                self.pending_delivery
                    .insert((channel, packet.sequence.value()), packet.clone());
            }
            // Count only what actually entered the destination mempool.
            self.stats.packets_cleared += self.deliver_recv_batch(channel, t, to_clear);
        }
    }

    /// The acknowledgement half of the packet-clear scan: packets received
    /// on the destination whose acknowledgements never made it back (e.g.
    /// because the write-ack events were lost to the frame limit) are
    /// re-acknowledged from chain state.
    fn clear_unrelayed_acks(&mut self, dst_height: u64, start: SimTime) {
        for channel in self.served_flush_order(dst_height) {
            let path = self.paths[channel].clone();
            let candidates: Vec<Packet> = {
                let chain = self.src_rpc.chain().borrow();
                let ibc = chain.app().ibc();
                let sent = ibc.sent_sequences(&path.port, &path.src_channel);
                ibc.unacknowledged_packets(&path.port, &path.src_channel, &sent)
                    .into_iter()
                    .inspect(|_| prof::bump_clear_scan_visit())
                    .filter(|seq| self.assigned(dst_height, *seq))
                    // Skip acknowledgements this instance has already
                    // broadcast and is waiting to see committed, and those a
                    // straddled source commit is holding in the deferred
                    // queue — clearing them again would enqueue a duplicate
                    // `MsgAcknowledgement`.
                    .filter(|seq| !self.pending_ack.contains(&(channel, seq.value())))
                    .filter(|seq| {
                        !self
                            .deferred_acks
                            .iter()
                            .any(|(ch, p)| *ch == channel && p.sequence == *seq)
                    })
                    .filter_map(|seq| ibc.sent_packet(&path.port, &path.src_channel, seq).cloned())
                    .collect()
            };
            if candidates.is_empty() {
                continue;
            }
            // Only packets the destination has already received can carry an
            // acknowledgement; the rest belong to the receive-side clear.
            // Received-status lives on the destination node, so the scan pays
            // for the cross-node query like every other destination lookup.
            let mut t = start.max(self.worker_back_free);
            let candidate_seqs: Vec<Sequence> = candidates.iter().map(|p| p.sequence).collect();
            let unreceived_resp =
                self.dst_rpc
                    .unreceived_packets(t, &path.port, &path.dst_channel, &candidate_seqs);
            t = unreceived_resp.ready_at;
            let unreceived: BTreeSet<Sequence> = unreceived_resp.value.into_iter().collect();
            let received: Vec<Packet> = candidates
                .into_iter()
                .filter(|p| !unreceived.contains(&p.sequence))
                .collect();
            if received.is_empty() {
                self.worker_back_free = t;
                continue;
            }
            self.telemetry.record_error(
                t,
                format!(
                    "clearing {} pending acknowledgements on {}",
                    received.len(),
                    path.dst_channel
                ),
            );
            // Count only what actually entered the source mempool.
            self.stats.packets_cleared += self.relay_ack_batch(channel, dst_height, t, received);
        }
    }

    /// Checks — under mempool-aware sequence tracking, after an observed
    /// commit on the target chain — whether the chain's `CheckTx` will
    /// accept this relayer's next sequence, by reconciling the per-chain
    /// [`SequenceTracker`] against the mempool-aware
    /// `account_sequence_unconfirmed` query.
    ///
    /// Returns the time at which the answer is known and whether it is safe
    /// to broadcast. `false` means the check state straddled a commit while
    /// this relayer's transactions were still in the target chain's mempool
    /// (§V's sequence race): the caller must hold its batch for a later
    /// flush instead of burning it on a duplicate sequence.
    ///
    /// Under the default [`SequenceTracking::Resync`] this is free and
    /// always ready — the paper pipeline's RPC trace is untouched.
    fn ensure_sequence_ready(&mut self, to: ChainRole, at: SimTime) -> (SimTime, bool) {
        let (tracker, rpc, account) = match to {
            ChainRole::Source => (
                &mut self.src_seq,
                &mut self.src_rpc,
                &self.config.source_account,
            ),
            ChainRole::Destination => (
                &mut self.dst_seq,
                &mut self.dst_rpc,
                &self.config.destination_account,
            ),
        };
        if tracker.is_held() {
            // A reconcile already reported the straddle since the last
            // commit; the check state cannot have changed, so hold without
            // paying the query again.
            return (at, false);
        }
        if !tracker.needs_reconcile() {
            return (at, true);
        }
        let resp = rpc.account_sequence_unconfirmed(at, account);
        let ready = tracker.reconcile(&resp.value);
        if !ready {
            self.telemetry.record_error(
                resp.ready_at,
                format!(
                    "holding batch: account sequence straddles a commit \
                     (committed {}, check state {}, {} txs unconfirmed)",
                    resp.value.committed, resp.value.expected, resp.value.pending
                ),
            );
        }
        (resp.ready_at, ready)
    }

    /// Builds, signs and broadcasts a transaction to one of the chains,
    /// recovering from account-sequence mismatches per the strategy's
    /// [`SequenceTracking`] arm: `Resync` re-queries the committed sequence
    /// and retries once (the paper's behaviour); `MempoolAware` reconciles
    /// against the unconfirmed-aware query and only retries when `CheckTx`
    /// will actually accept the sequence. Returns the time at which the
    /// broadcast response was received and, when the transaction (or its
    /// retry) was accepted into the mempool, the hash of the transaction
    /// that was actually accepted — under `Resync` a retry is a *different*
    /// transaction (new sequence, new hash), and callers tracking the
    /// mempool-to-commit window must watch the accepted hash, not the
    /// first attempt's.
    fn broadcast(&mut self, to: ChainRole, at: SimTime, msgs: Vec<Msg>) -> (SimTime, Option<Hash>) {
        let (account, fee_denom) = match to {
            ChainRole::Source => (
                self.config.source_account.clone(),
                self.src_fee_denom.clone(),
            ),
            ChainRole::Destination => (
                self.config.destination_account.clone(),
                self.dst_fee_denom.clone(),
            ),
        };
        let (tracker, rpc) = match to {
            ChainRole::Source => (&mut self.src_seq, &mut self.src_rpc),
            ChainRole::Destination => (&mut self.dst_seq, &mut self.dst_rpc),
        };
        // `msgs` moves into the transaction; the rare retry paths reclaim it
        // from `tx.msgs` instead of paying an up-front clone on every
        // broadcast.
        let tx = Tx::new(account.clone(), tracker.next(), msgs, &fee_denom);
        let resp = rpc.broadcast_tx_sync(at, &tx);
        let mut ready = resp.ready_at;
        let mut accepted = None;
        match resp.value {
            Ok(_) => {
                accepted = Some(tx.hash());
                tracker.advance();
            }
            Err(BroadcastError::CheckTxFailed { log, .. })
                if log.contains("account sequence mismatch") =>
            {
                self.stats.broadcast_failures += 1;
                self.telemetry.record_error(ready, log);
                match tracker.mode() {
                    SequenceTracking::Resync => {
                        // Re-sync the sequence from the chain's *committed*
                        // state and retry once — stale across a straddled
                        // commit, which is exactly the §V race.
                        let seq_resp = rpc.account_sequence(ready, &account);
                        ready = seq_resp.ready_at;
                        let new_seq = seq_resp.value;
                        let retry_tx = Tx::new(account, new_seq, tx.msgs, &fee_denom);
                        let retry = rpc.broadcast_tx_sync(ready, &retry_tx);
                        ready = retry.ready_at;
                        match retry.value {
                            Ok(_) => {
                                accepted = Some(retry_tx.hash());
                                tracker.resync(new_seq + 1);
                            }
                            Err(err) => {
                                self.stats.broadcast_failures += 1;
                                self.telemetry.record_error(ready, err.to_string());
                                // The retry failed for a non-sequence reason
                                // (its CheckTx passed or rejected the tx
                                // without consuming a sequence), so the
                                // freshly queried sequence is still the
                                // account's committed truth — keep it
                                // instead of reverting to the stale value
                                // that caused the mismatch, which would make
                                // every subsequent broadcast repeat the
                                // resync-and-retry dance.
                                tracker.resync(new_seq);
                            }
                        }
                    }
                    SequenceTracking::MempoolAware => {
                        // Reconcile against the mempool-aware query; retry
                        // only when CheckTx will actually accept the
                        // sequence. A straddle leaves the messages
                        // unaccepted for the caller to re-flush — never
                        // burned on a duplicate sequence.
                        let snap = rpc.account_sequence_unconfirmed(ready, &account);
                        ready = snap.ready_at;
                        if tracker.reconcile(&snap.value) {
                            let retry_tx = Tx::new(account, tracker.next(), tx.msgs, &fee_denom);
                            let retry = rpc.broadcast_tx_sync(ready, &retry_tx);
                            ready = retry.ready_at;
                            match retry.value {
                                Ok(_) => {
                                    accepted = Some(retry_tx.hash());
                                    tracker.advance();
                                }
                                Err(err) => {
                                    self.stats.broadcast_failures += 1;
                                    self.telemetry.record_error(ready, err.to_string());
                                }
                            }
                        }
                    }
                }
            }
            Err(err) => {
                self.stats.broadcast_failures += 1;
                self.telemetry.record_error(ready, err.to_string());
            }
        }
        (ready, accepted)
    }
}

impl std::fmt::Debug for Relayer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Relayer")
            .field("id", &self.id)
            .field("channels", &self.paths.len())
            .field("stages", &self.stages)
            .field("packets_tracked", &self.telemetry.len())
            .field("stats", &self.stats)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcc_chain::chain::Chain;
    use xcc_chain::coin::Coin;
    use xcc_chain::genesis::GenesisConfig;
    use xcc_ibc::ids::{ChannelId, ClientId};
    use xcc_rpc::cost::RpcCostModel;
    use xcc_sim::{DetRng, LatencyModel};
    use xcc_tendermint::mempool::MempoolConfig;
    use xcc_tendermint::params::{ConsensusParams, ConsensusTimingModel};

    fn chain_with_mempool(id: &str, max_txs: usize) -> xcc_chain::chain::SharedChain {
        Chain::with_params(
            GenesisConfig::new(id)
                .with_account("relayer", 1_000_000_000)
                .with_funded_accounts("user", 2, 1_000_000_000),
            ConsensusParams::default(),
            ConsensusTimingModel::default(),
            MempoolConfig {
                max_txs,
                ..MempoolConfig::default()
            },
        )
        .into_shared()
    }

    fn rpc_for(chain: &xcc_chain::chain::SharedChain, seed: u64) -> RpcEndpoint {
        RpcEndpoint::new(
            chain.clone(),
            RpcCostModel::default(),
            LatencyModel::Zero,
            DetRng::new(seed),
        )
    }

    fn test_relayer(dst: &xcc_chain::chain::SharedChain) -> Relayer {
        let src = chain_with_mempool("src-chain", 5_000);
        // The broadcast path never touches channel state, so a nominal path
        // is enough to construct the driver.
        let path = RelayPath {
            src_chain: ChainId::new("src-chain"),
            dst_chain: ChainId::new("dst-chain"),
            port: xcc_ibc::ids::PortId::transfer(),
            src_channel: ChannelId::with_index(0),
            dst_channel: ChannelId::with_index(0),
            client_on_dst: ClientId::with_index(0),
            client_on_src: ClientId::with_index(0),
        };
        Relayer::new(
            0,
            RelayerConfig::default(),
            path,
            rpc_for(&src, 1),
            rpc_for(dst, 2),
        )
    }

    fn bank_msg(amount: u128) -> Msg {
        Msg::BankSend {
            from: "relayer".into(),
            to: "user-0".into(),
            amount: Coin::new("uatom", amount),
        }
    }

    fn user_tx(chain: &xcc_chain::chain::SharedChain, seq: u64) {
        let tx = xcc_chain::tx::Tx::new(
            "user-1".into(),
            seq,
            vec![Msg::BankSend {
                from: "user-1".into(),
                to: "user-0".into(),
                amount: Coin::new("uatom", 1),
            }],
            "uatom",
        );
        chain
            .borrow_mut()
            .submit_tx(&tx, SimTime::ZERO)
            .expect("filler tx enters the mempool");
    }

    /// Pins the wake protocol the runner's event loop is built on: block
    /// notifications are O(1) inbox pushes, `wake` drains the inbox in FIFO
    /// order, and spurious wakes (empty inbox) are harmless no-ops.
    #[test]
    fn wake_drains_the_inbox_and_spurious_wakes_are_noops() {
        let dst = chain_with_mempool("dst-chain", 100);
        let mut relayer = test_relayer(&dst);
        assert!(!relayer.has_pending_notices());
        assert_eq!(relayer.wake(SimTime::ZERO), None, "empty wake is a no-op");

        relayer.notify_source_block(1, SimTime::from_secs(5));
        relayer.notify_dest_block(1, SimTime::from_secs(5));
        assert!(relayer.has_pending_notices());
        assert_eq!(
            relayer.wake(SimTime::from_secs(5)),
            None,
            "no time-driven obligations: everything waits on a future commit"
        );
        assert!(!relayer.has_pending_notices(), "wake drained the inbox");

        // The synchronous wrapper is notify + immediate wake.
        relayer.on_source_block(2, SimTime::from_secs(10));
        assert!(!relayer.has_pending_notices());
    }

    /// A pinned channel assignment routes every channel decision, and the
    /// coordination id (replica index within the channel's group) replaces
    /// the global process id for work division.
    #[test]
    fn channel_assignment_and_coordination_id_route_the_fleet() {
        let dst = chain_with_mempool("dst-chain", 100);
        let src = chain_with_mempool("src-chain", 100);
        let path = |i: u64| RelayPath {
            src_chain: ChainId::new("src-chain"),
            dst_chain: ChainId::new("dst-chain"),
            port: xcc_ibc::ids::PortId::transfer(),
            src_channel: ChannelId::with_index(i),
            dst_channel: ChannelId::with_index(i),
            client_on_dst: ClientId::with_index(0),
            client_on_src: ClientId::with_index(0),
        };
        // Process 3 of a dedicated fleet: pinned to channel 1, replica 1 of
        // a 2-replica group coordinated by sequence partitioning.
        let config = RelayerConfig {
            strategy: crate::strategy::RelayerStrategy::coordinated(),
            instances: 2,
            channel_assignment: Some(1),
            coordination_id: Some(1),
            ..RelayerConfig::default()
        };
        let relayer = Relayer::with_paths(
            3,
            config,
            vec![path(0), path(1), path(2)],
            rpc_for(&src, 1),
            rpc_for(&dst, 2),
        );
        assert_eq!(relayer.channel_assignment(), Some(1));
        assert!(!relayer.serves_channel(0));
        assert!(relayer.serves_channel(1));
        assert!(!relayer.serves_channel(2));
        // Sequence partitioning over 2 replicas under coordination id 1:
        // odd sequences belong to this process, even ones to replica 0.
        assert!(relayer.assigned(10, Sequence::from(7)));
        assert!(!relayer.assigned(10, Sequence::from(8)));
    }

    /// Pins the `broadcast_failures` counting semantics documented on
    /// [`RelayerStats`]: a single logical submission whose initial attempt
    /// and post-resync retry both fail increments the counter **twice** —
    /// it counts failed attempts, not logical submissions.
    #[test]
    fn both_failed_attempts_of_one_submission_count_twice() {
        // A destination whose mempool holds exactly one transaction, already
        // occupied by a user's filler tx, and whose committed relayer
        // sequence has moved past the relayer's local view.
        let dst = chain_with_mempool("dst-chain", 1);
        let mut relayer = test_relayer(&dst);
        {
            // Desync: someone (a prior relayer run) commits a tx from the
            // relayer's account.
            let external = xcc_chain::tx::Tx::new("relayer".into(), 0, vec![bank_msg(7)], "uatom");
            dst.borrow_mut()
                .submit_tx(&external, SimTime::ZERO)
                .unwrap();
            dst.borrow_mut().produce_block(SimTime::from_secs(5));
        }
        user_tx(&dst, 0); // fills the 1-slot mempool

        // Initial attempt: sequence mismatch (local 0, committed 1).
        // Retry after resync: CheckTx passes at sequence 1, but the mempool
        // is full — a non-sequence failure. One logical submission, two
        // counted failures.
        let (_, accepted) = relayer.broadcast(
            ChainRole::Destination,
            SimTime::from_secs(6),
            vec![bank_msg(1)],
        );
        assert!(accepted.is_none());
        assert_eq!(relayer.stats().broadcast_failures, 2);
    }

    /// The retry path must persist the freshly queried sequence even when
    /// the retry fails for a non-sequence reason; otherwise the next
    /// broadcast repeats the mismatch with the stale value forever.
    #[test]
    fn failed_retry_persists_the_resynced_sequence() {
        let dst = chain_with_mempool("dst-chain", 1);
        let mut relayer = test_relayer(&dst);
        {
            let external = xcc_chain::tx::Tx::new("relayer".into(), 0, vec![bank_msg(7)], "uatom");
            dst.borrow_mut()
                .submit_tx(&external, SimTime::ZERO)
                .unwrap();
            dst.borrow_mut().produce_block(SimTime::from_secs(5));
        }
        user_tx(&dst, 0);
        let (_, accepted) = relayer.broadcast(
            ChainRole::Destination,
            SimTime::from_secs(6),
            vec![bank_msg(1)],
        );
        assert!(accepted.is_none());
        assert_eq!(relayer.stats().broadcast_failures, 2);

        // Drain the mempool; the next broadcast must reuse the persisted
        // sequence (1) and succeed first try — no third failure.
        dst.borrow_mut().produce_block(SimTime::from_secs(10));
        assert_eq!(dst.borrow().mempool_size(), 0);
        let (_, accepted) = relayer.broadcast(
            ChainRole::Destination,
            SimTime::from_secs(11),
            vec![bank_msg(2)],
        );
        assert!(
            accepted.is_some(),
            "the persisted sequence is accepted directly"
        );
        assert_eq!(
            relayer.stats().broadcast_failures,
            2,
            "no repeated mismatch from a stale cached sequence"
        );
    }

    /// Pins the crashed-process notification semantics the fault subsystem
    /// relies on: notices delivered to a crashed process collapse into O(1)
    /// missed-height slots (never an unbounded inbox, never silently
    /// dropped), and restart replays at most [`RESTART_REPLAY_WINDOW`]
    /// heights per chain through the normal inbox.
    #[test]
    fn crashed_process_bounds_notices_and_replays_a_window_on_restart() {
        let dst = chain_with_mempool("dst-chain", 100);
        let mut relayer = test_relayer(&dst);
        relayer.on_source_block(1, SimTime::from_secs(5));
        assert_eq!(relayer.last_src_processed, 1);

        relayer.crash(SimTime::from_secs(6));
        assert!(relayer.is_crashed());
        // A long outage: 100 source and 3 destination commits arrive.
        for height in 2..=101 {
            relayer.notify_source_block(height, SimTime::from_secs(5 * height));
        }
        for height in 1..=3 {
            relayer.notify_dest_block(height, SimTime::from_secs(5 * height));
        }
        assert!(
            !relayer.has_pending_notices(),
            "crashed processes keep no inbox"
        );
        assert_eq!(relayer.missed_src, Some(101));
        assert_eq!(relayer.missed_dst, Some(3));
        assert_eq!(
            relayer.wake(SimTime::from_secs(500)),
            None,
            "wakes are no-ops while crashed"
        );

        relayer.restart(SimTime::from_secs(520));
        assert!(!relayer.is_crashed());
        // Source replay is capped to the newest RESTART_REPLAY_WINDOW
        // heights; the short destination gap replays in full.
        assert_eq!(
            relayer.inbox.len() as u64,
            RESTART_REPLAY_WINDOW + 3,
            "replay backlog is bounded by the window"
        );
        let first = relayer.inbox.front().copied().unwrap();
        assert_eq!(
            first,
            BlockNotice::Source {
                height: 102 - RESTART_REPLAY_WINDOW,
                committed_at: SimTime::from_secs(520),
            }
        );
        assert_eq!(relayer.missed_src, None);
        assert_eq!(relayer.missed_dst, None);
    }

    /// A crash loses every piece of in-memory pipeline state; restarting
    /// while not crashed is a no-op.
    #[test]
    fn crash_wipes_pipeline_state_and_restart_is_idempotent() {
        let dst = chain_with_mempool("dst-chain", 100);
        let mut relayer = test_relayer(&dst);
        let packet = Packet {
            sequence: Sequence::from(1),
            source_port: xcc_ibc::ids::PortId::transfer(),
            source_channel: ChannelId::with_index(0),
            destination_port: xcc_ibc::ids::PortId::transfer(),
            destination_channel: ChannelId::with_index(0),
            data: Vec::new(),
            timeout_height: Height::at(0),
            timeout_timestamp: SimTime::ZERO,
        };
        relayer.pending_recv.push((0, 1, packet.clone()));
        relayer.pending_delivery.insert((0, 1), packet.clone());
        relayer.pending_recv_inflight.insert((0, 1));
        relayer.pending_ack.insert((0, 1));
        relayer.deferred_acks.push((0, packet));
        relayer.notify_source_block(1, SimTime::from_secs(5));

        relayer.crash(SimTime::from_secs(6));
        assert!(relayer.pending_recv.is_empty());
        assert!(relayer.pending_delivery.is_empty());
        assert!(relayer.pending_recv_inflight.is_empty());
        assert!(relayer.pending_ack.is_empty());
        assert!(relayer.deferred_acks.is_empty());
        assert!(relayer.inbox.is_empty());

        // Restart on a healthy process changes nothing.
        relayer.restart(SimTime::from_secs(7));
        let lanes_before = relayer.lane_stats();
        relayer.restart(SimTime::from_secs(8));
        assert_eq!(relayer.lane_stats(), lanes_before);
    }

    /// The cold-cache resync: a restarted process re-reads its account
    /// sequence from committed chain state, so a sequence consumed by its
    /// previous incarnation never causes a mismatch after restart.
    #[test]
    fn restart_reseeds_sequence_trackers_from_committed_state() {
        let dst = chain_with_mempool("dst-chain", 100);
        let mut relayer = test_relayer(&dst);
        // The previous incarnation's tx commits while we are down.
        let external = xcc_chain::tx::Tx::new("relayer".into(), 0, vec![bank_msg(7)], "uatom");
        dst.borrow_mut()
            .submit_tx(&external, SimTime::ZERO)
            .unwrap();
        relayer.crash(SimTime::from_secs(1));
        dst.borrow_mut().produce_block(SimTime::from_secs(5));

        relayer.restart(SimTime::from_secs(6));
        let (_, accepted) = relayer.broadcast(
            ChainRole::Destination,
            SimTime::from_secs(7),
            vec![bank_msg(1)],
        );
        assert!(accepted.is_some(), "restart re-seeded the tracker cold");
        assert_eq!(relayer.stats().broadcast_failures, 0);
    }

    /// §V's account-sequence race can also strike at DeliverTx: a receive
    /// transaction enters the mempool, then commits *failed*. A failed
    /// transaction emits no packet events, so only the per-transaction
    /// commit watch can release the in-flight markers — without it the
    /// packet-clear scan, which skips in-flight packets, could never rescue
    /// the stranded packets.
    #[test]
    fn failed_tx_commit_releases_inflight_markers_to_the_clear_scan() {
        let dst = chain_with_mempool("dst-chain", 100);
        let mut relayer = test_relayer(&dst);
        let hash_ok = Hash([1; 32]);
        let hash_bad = Hash([2; 32]);
        relayer.pending_recv_inflight.insert((0, 1));
        relayer.pending_recv_inflight.insert((0, 2));
        relayer.pending_recv_inflight.insert((0, 3));
        relayer.inflight_recv_txs.push((hash_ok, vec![(0, 1)]));
        relayer
            .inflight_recv_txs
            .push((hash_bad, vec![(0, 2), (0, 3)]));

        // An untracked hash is some other account's transaction: a no-op.
        relayer.note_committed_tx(ChainRole::Destination, &Hash([9; 32]), 5, SimTime::ZERO);
        assert_eq!(relayer.pending_recv_inflight.len(), 3);

        // A successful commit retires the tracked transaction but keeps the
        // markers: the same block's WRITE_ACK events remove those.
        relayer.note_committed_tx(ChainRole::Destination, &hash_ok, 0, SimTime::ZERO);
        assert!(relayer.pending_recv_inflight.contains(&(0, 1)));
        assert_eq!(relayer.inflight_recv_txs.len(), 1);

        // A failed commit releases its markers, so the next clear scan sees
        // the packets as eligible again.
        relayer.note_committed_tx(ChainRole::Destination, &hash_bad, 5, SimTime::from_secs(1));
        assert!(relayer.pending_recv_inflight.contains(&(0, 1)));
        assert!(!relayer.pending_recv_inflight.contains(&(0, 2)));
        assert!(!relayer.pending_recv_inflight.contains(&(0, 3)));
        assert!(relayer.inflight_recv_txs.is_empty());

        // The acknowledgement path mirrors the receive path.
        relayer.pending_ack.insert((0, 4));
        relayer.inflight_ack_txs.push((hash_bad, vec![(0, 4)]));
        relayer.note_committed_tx(ChainRole::Source, &hash_bad, 5, SimTime::from_secs(2));
        assert!(relayer.pending_ack.is_empty());
        assert!(relayer.inflight_ack_txs.is_empty());
    }
}
