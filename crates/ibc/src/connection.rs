//! ICS-03 connection semantics: connection ends and the four-step handshake.

use serde::{Deserialize, Serialize};

use crate::ids::{ClientId, ConnectionId};

/// The lifecycle state of a connection end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ConnectionState {
    /// `ConnOpenInit` has been executed on this chain.
    Init,
    /// `ConnOpenTry` has been executed on this chain.
    TryOpen,
    /// The handshake completed; the connection is usable.
    Open,
}

/// The counterparty of a connection end.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnectionCounterparty {
    /// The counterparty chain's client that tracks *this* chain.
    pub client_id: ClientId,
    /// The counterparty's connection identifier, once known.
    pub connection_id: Option<ConnectionId>,
}

/// One end of an IBC connection.
///
/// # Example
///
/// ```rust
/// use xcc_ibc::connection::{ConnectionCounterparty, ConnectionEnd, ConnectionState};
/// use xcc_ibc::ids::{ClientId, ConnectionId};
///
/// let end = ConnectionEnd::new(
///     ConnectionState::Init,
///     ClientId::with_index(0),
///     ConnectionCounterparty { client_id: ClientId::with_index(0), connection_id: None },
/// );
/// assert!(!end.is_open());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConnectionEnd {
    /// Current handshake state.
    pub state: ConnectionState,
    /// The local client tracking the counterparty chain.
    pub client_id: ClientId,
    /// Counterparty information.
    pub counterparty: ConnectionCounterparty,
    /// Supported connection versions (informational).
    pub versions: Vec<String>,
    /// Minimum delay before packets over this connection may be relayed, in
    /// nanoseconds (0 in all of the paper's experiments).
    pub delay_period_nanos: u64,
}

impl ConnectionEnd {
    /// Creates a connection end with the default version and no delay.
    pub fn new(
        state: ConnectionState,
        client_id: ClientId,
        counterparty: ConnectionCounterparty,
    ) -> Self {
        ConnectionEnd {
            state,
            client_id,
            counterparty,
            versions: vec!["1".to_string()],
            delay_period_nanos: 0,
        }
    }

    /// `true` once the handshake has completed on this end.
    pub fn is_open(&self) -> bool {
        self.state == ConnectionState::Open
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn connection_end_state_transitions() {
        let mut end = ConnectionEnd::new(
            ConnectionState::Init,
            ClientId::with_index(0),
            ConnectionCounterparty {
                client_id: ClientId::with_index(1),
                connection_id: None,
            },
        );
        assert!(!end.is_open());
        end.state = ConnectionState::Open;
        end.counterparty.connection_id = Some(ConnectionId::with_index(0));
        assert!(end.is_open());
        assert_eq!(end.versions, vec!["1".to_string()]);
        assert_eq!(end.delay_period_nanos, 0);
    }
}
