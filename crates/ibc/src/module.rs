//! The IBC core module hosted by a chain: clients, connections, channels and
//! the packet life cycle (ICS-02/03/04 plus the ICS-20 application wiring).
//!
//! The module is a pure state machine operated by the host chain's message
//! handlers. Handlers return the ABCI events the host must emit, which is how
//! relayers observe protocol progress.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::channel::{ChannelCounterparty, ChannelEnd, ChannelState, Order};
use crate::client::{ClientRecord, ClientUpdate};
use crate::commitment::{CommitmentProof, CommitmentRoot, CommitmentStore, NonMembershipProof};
use crate::connection::{ConnectionCounterparty, ConnectionEnd, ConnectionState};
use crate::error::IbcError;
use crate::events;
use crate::height::Height;
use crate::host;
use crate::ids::{ChannelId, ClientId, ConnectionId, PortId, Sequence};
use crate::packet::{Acknowledgement, Packet};
use crate::transfer::{self, BankKeeper, FungibleTokenPacketData};
use xcc_sim::SimTime;
use xcc_tendermint::abci::Event;
use xcc_tendermint::block::Header;
use xcc_tendermint::hash::{hash_fields, Hash};

/// The host chain's view of "now", passed into every packet handler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HostContext {
    /// Current block height of the host chain.
    pub height: Height,
    /// Current block time of the host chain.
    pub time: SimTime,
}

/// Parameters of an ICS-20 transfer request (the content of `MsgTransfer`).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TransferParams {
    /// Port to send from (normally `transfer`).
    pub source_port: PortId,
    /// Channel to send over.
    pub source_channel: ChannelId,
    /// Denomination to send.
    pub denom: String,
    /// Amount to send.
    pub amount: u128,
    /// Sender account on the host chain.
    pub sender: String,
    /// Receiver account on the counterparty chain.
    pub receiver: String,
    /// Destination-chain height after which the transfer times out.
    pub timeout_height: Height,
    /// Destination-chain timestamp after which the transfer times out.
    pub timeout_timestamp: SimTime,
}

/// Per-channel packet bookkeeping totals, as seen by one chain.
///
/// With several channels open on one port (the multi-channel deployments of
/// the `multi_channel_scaling` / `channel_contention` scenarios), each
/// channel keeps fully independent sequence, commitment and acknowledgement
/// state; this summary exposes the per-channel counters the analysis layer
/// aggregates.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ChannelPacketStats {
    /// Packets sent on this channel end.
    pub sent: u64,
    /// Sent packets whose commitment is still outstanding (neither
    /// acknowledged nor timed out).
    pub outstanding: u64,
    /// Acknowledgements written on this channel end (the receiving side of
    /// the packet flow).
    pub acks_written: u64,
}

/// The IBC module state hosted by one chain.
#[derive(Debug, Clone)]
pub struct IbcModule {
    chain_id: String,
    clients: BTreeMap<ClientId, ClientRecord>,
    client_counter: u64,
    connections: BTreeMap<ConnectionId, ConnectionEnd>,
    connection_counter: u64,
    channels: BTreeMap<(PortId, ChannelId), ChannelEnd>,
    channel_counter: u64,
    store: CommitmentStore,
    sent_packets: BTreeMap<(PortId, ChannelId, Sequence), Packet>,
    acks: BTreeMap<(PortId, ChannelId, Sequence), Acknowledgement>,
}

impl IbcModule {
    /// Creates an empty IBC module for the given host chain.
    pub fn new(chain_id: impl Into<String>) -> Self {
        IbcModule {
            chain_id: chain_id.into(),
            clients: BTreeMap::new(),
            client_counter: 0,
            connections: BTreeMap::new(),
            connection_counter: 0,
            channels: BTreeMap::new(),
            channel_counter: 0,
            store: CommitmentStore::new(),
            sent_packets: BTreeMap::new(),
            acks: BTreeMap::new(),
        }
    }

    /// The host chain's identifier.
    pub fn chain_id(&self) -> &str {
        &self.chain_id
    }

    /// The current IBC commitment root (folded into the host's app hash).
    pub fn commitment_root(&self) -> CommitmentRoot {
        self.store.root()
    }

    // ------------------------------------------------------------------
    // ICS-02: clients
    // ------------------------------------------------------------------

    /// Creates a light client from an initial trusted header of the
    /// counterparty chain (`MsgCreateClient`).
    pub fn create_client(
        &mut self,
        initial_header: &Header,
        ibc_root: CommitmentRoot,
    ) -> (ClientId, Vec<Event>) {
        let client_id = ClientId::with_index(self.client_counter);
        self.client_counter += 1;
        let record = ClientRecord::create(client_id.clone(), initial_header, ibc_root);
        let height = record.latest_height();
        self.store.set(
            host::client_state_path(&client_id),
            hash_fields(&[b"client-state", initial_header.chain_id.as_bytes()]),
        );
        self.store
            .set(host::consensus_state_path(&client_id, height), ibc_root);
        self.clients.insert(client_id.clone(), record);
        let event = Event::new("create_client")
            .with_attr("client_id", client_id.as_str())
            .with_attr("consensus_height", height.to_string());
        (client_id, vec![event])
    }

    /// Updates a client with a newer verified header (`MsgUpdateClient`).
    ///
    /// # Errors
    ///
    /// Fails when the client does not exist or header verification fails.
    pub fn update_client(
        &mut self,
        client_id: &ClientId,
        update: &ClientUpdate,
    ) -> Result<Vec<Event>, IbcError> {
        let record = self
            .clients
            .get_mut(client_id)
            .ok_or_else(|| IbcError::ClientNotFound {
                client_id: client_id.clone(),
            })?;
        let height = record.update(update)?;
        self.store.set(
            host::consensus_state_path(client_id, height),
            update.ibc_root,
        );
        Ok(vec![Event::new("update_client")
            .with_attr("client_id", client_id.as_str())
            .with_attr("consensus_height", height.to_string())])
    }

    /// Marks a hosted client's trust period as lapsed (the `ClientExpiry`
    /// fault event). From then on, updates and proof verification against
    /// this client fail with [`IbcError::ClientExpired`]; timeouts keep
    /// working against consensus states verified before expiry.
    ///
    /// # Errors
    ///
    /// Fails when the client does not exist.
    pub fn expire_client(&mut self, client_id: &ClientId) -> Result<(), IbcError> {
        let record = self
            .clients
            .get_mut(client_id)
            .ok_or_else(|| IbcError::ClientNotFound {
                client_id: client_id.clone(),
            })?;
        record.expire();
        Ok(())
    }

    /// Read access to a hosted client.
    pub fn client(&self, client_id: &ClientId) -> Option<&ClientRecord> {
        self.clients.get(client_id)
    }

    /// Number of hosted clients.
    pub fn client_count(&self) -> usize {
        self.clients.len()
    }

    // ------------------------------------------------------------------
    // ICS-03: connections
    // ------------------------------------------------------------------

    /// Starts a connection handshake (`ConnOpenInit`).
    ///
    /// # Errors
    ///
    /// Fails when the referenced client does not exist.
    pub fn conn_open_init(
        &mut self,
        client_id: &ClientId,
        counterparty_client_id: &ClientId,
    ) -> Result<(ConnectionId, Vec<Event>), IbcError> {
        self.require_client(client_id)?;
        let connection_id = ConnectionId::with_index(self.connection_counter);
        self.connection_counter += 1;
        let end = ConnectionEnd::new(
            ConnectionState::Init,
            client_id.clone(),
            ConnectionCounterparty {
                client_id: counterparty_client_id.clone(),
                connection_id: None,
            },
        );
        self.write_connection(&connection_id, end);
        let event = Event::new("connection_open_init")
            .with_attr("connection_id", connection_id.as_str())
            .with_attr("client_id", client_id.as_str());
        Ok((connection_id, vec![event]))
    }

    /// Responds to a counterparty's `ConnOpenInit` (`ConnOpenTry`).
    ///
    /// # Errors
    ///
    /// Fails when the referenced client does not exist.
    pub fn conn_open_try(
        &mut self,
        client_id: &ClientId,
        counterparty_client_id: &ClientId,
        counterparty_connection_id: &ConnectionId,
    ) -> Result<(ConnectionId, Vec<Event>), IbcError> {
        self.require_client(client_id)?;
        let connection_id = ConnectionId::with_index(self.connection_counter);
        self.connection_counter += 1;
        let end = ConnectionEnd::new(
            ConnectionState::TryOpen,
            client_id.clone(),
            ConnectionCounterparty {
                client_id: counterparty_client_id.clone(),
                connection_id: Some(counterparty_connection_id.clone()),
            },
        );
        self.write_connection(&connection_id, end);
        let event = Event::new("connection_open_try")
            .with_attr("connection_id", connection_id.as_str())
            .with_attr(
                "counterparty_connection_id",
                counterparty_connection_id.as_str(),
            );
        Ok((connection_id, vec![event]))
    }

    /// Completes the handshake on the initiating chain (`ConnOpenAck`).
    ///
    /// # Errors
    ///
    /// Fails when the connection does not exist or is not in `Init` state.
    pub fn conn_open_ack(
        &mut self,
        connection_id: &ConnectionId,
        counterparty_connection_id: &ConnectionId,
    ) -> Result<Vec<Event>, IbcError> {
        let end = self.connections.get_mut(connection_id).ok_or_else(|| {
            IbcError::ConnectionNotFound {
                connection_id: connection_id.clone(),
            }
        })?;
        if end.state != ConnectionState::Init {
            return Err(IbcError::InvalidState {
                reason: format!(
                    "connection {connection_id} must be in Init to ack, is {:?}",
                    end.state
                ),
            });
        }
        end.state = ConnectionState::Open;
        end.counterparty.connection_id = Some(counterparty_connection_id.clone());
        let end = end.clone();
        self.write_connection(connection_id, end);
        Ok(vec![
            Event::new("connection_open_ack").with_attr("connection_id", connection_id.as_str())
        ])
    }

    /// Completes the handshake on the responding chain (`ConnOpenConfirm`).
    ///
    /// # Errors
    ///
    /// Fails when the connection does not exist or is not in `TryOpen` state.
    pub fn conn_open_confirm(
        &mut self,
        connection_id: &ConnectionId,
    ) -> Result<Vec<Event>, IbcError> {
        let end = self.connections.get_mut(connection_id).ok_or_else(|| {
            IbcError::ConnectionNotFound {
                connection_id: connection_id.clone(),
            }
        })?;
        if end.state != ConnectionState::TryOpen {
            return Err(IbcError::InvalidState {
                reason: format!(
                    "connection {connection_id} must be in TryOpen to confirm, is {:?}",
                    end.state
                ),
            });
        }
        end.state = ConnectionState::Open;
        let end = end.clone();
        self.write_connection(connection_id, end);
        Ok(vec![Event::new("connection_open_confirm")
            .with_attr("connection_id", connection_id.as_str())])
    }

    /// Read access to a connection end.
    pub fn connection(&self, connection_id: &ConnectionId) -> Option<&ConnectionEnd> {
        self.connections.get(connection_id)
    }

    // ------------------------------------------------------------------
    // ICS-04: channel handshake
    // ------------------------------------------------------------------

    /// Starts a channel handshake (`ChanOpenInit`).
    ///
    /// # Errors
    ///
    /// Fails when the underlying connection does not exist.
    pub fn chan_open_init(
        &mut self,
        port_id: &PortId,
        connection_id: &ConnectionId,
        counterparty_port_id: &PortId,
        ordering: Order,
    ) -> Result<(ChannelId, Vec<Event>), IbcError> {
        self.require_connection(connection_id)?;
        let channel_id = ChannelId::with_index(self.channel_counter);
        self.channel_counter += 1;
        let end = ChannelEnd::new(
            ChannelState::Init,
            ordering,
            ChannelCounterparty {
                port_id: counterparty_port_id.clone(),
                channel_id: None,
            },
            connection_id.clone(),
        );
        self.write_channel(port_id, &channel_id, end);
        let event = Event::new("channel_open_init")
            .with_attr("port_id", port_id.as_str())
            .with_attr("channel_id", channel_id.as_str())
            .with_attr("connection_id", connection_id.as_str());
        Ok((channel_id, vec![event]))
    }

    /// Responds to a counterparty's `ChanOpenInit` (`ChanOpenTry`).
    ///
    /// # Errors
    ///
    /// Fails when the underlying connection does not exist.
    pub fn chan_open_try(
        &mut self,
        port_id: &PortId,
        connection_id: &ConnectionId,
        counterparty_port_id: &PortId,
        counterparty_channel_id: &ChannelId,
        ordering: Order,
    ) -> Result<(ChannelId, Vec<Event>), IbcError> {
        self.require_connection(connection_id)?;
        let channel_id = ChannelId::with_index(self.channel_counter);
        self.channel_counter += 1;
        let end = ChannelEnd::new(
            ChannelState::TryOpen,
            ordering,
            ChannelCounterparty {
                port_id: counterparty_port_id.clone(),
                channel_id: Some(counterparty_channel_id.clone()),
            },
            connection_id.clone(),
        );
        self.write_channel(port_id, &channel_id, end);
        let event = Event::new("channel_open_try")
            .with_attr("port_id", port_id.as_str())
            .with_attr("channel_id", channel_id.as_str());
        Ok((channel_id, vec![event]))
    }

    /// Completes the handshake on the initiating chain (`ChanOpenAck`).
    ///
    /// # Errors
    ///
    /// Fails when the channel does not exist or is not in `Init` state.
    pub fn chan_open_ack(
        &mut self,
        port_id: &PortId,
        channel_id: &ChannelId,
        counterparty_channel_id: &ChannelId,
    ) -> Result<Vec<Event>, IbcError> {
        let end = self.channel_mut(port_id, channel_id)?;
        if end.state != ChannelState::Init {
            return Err(IbcError::InvalidState {
                reason: format!(
                    "channel {channel_id} must be in Init to ack, is {:?}",
                    end.state
                ),
            });
        }
        end.state = ChannelState::Open;
        end.counterparty.channel_id = Some(counterparty_channel_id.clone());
        let end = end.clone();
        self.write_channel(port_id, channel_id, end);
        Ok(vec![Event::new("channel_open_ack")
            .with_attr("port_id", port_id.as_str())
            .with_attr("channel_id", channel_id.as_str())])
    }

    /// Completes the handshake on the responding chain (`ChanOpenConfirm`).
    ///
    /// # Errors
    ///
    /// Fails when the channel does not exist or is not in `TryOpen` state.
    pub fn chan_open_confirm(
        &mut self,
        port_id: &PortId,
        channel_id: &ChannelId,
    ) -> Result<Vec<Event>, IbcError> {
        let end = self.channel_mut(port_id, channel_id)?;
        if end.state != ChannelState::TryOpen {
            return Err(IbcError::InvalidState {
                reason: format!(
                    "channel {channel_id} must be in TryOpen to confirm, is {:?}",
                    end.state
                ),
            });
        }
        end.state = ChannelState::Open;
        let end = end.clone();
        self.write_channel(port_id, channel_id, end);
        Ok(vec![Event::new("channel_open_confirm")
            .with_attr("port_id", port_id.as_str())
            .with_attr("channel_id", channel_id.as_str())])
    }

    /// Read access to a channel end.
    pub fn channel(&self, port_id: &PortId, channel_id: &ChannelId) -> Option<&ChannelEnd> {
        self.channels.get(&(port_id.clone(), channel_id.clone()))
    }

    // ------------------------------------------------------------------
    // ICS-04 + ICS-20: packet life cycle
    // ------------------------------------------------------------------

    /// Handles `MsgTransfer`: escrows/burns the funds and sends the packet.
    ///
    /// # Errors
    ///
    /// Fails when the channel is not open or the sender's funds are
    /// insufficient.
    pub fn send_transfer(
        &mut self,
        _ctx: &HostContext,
        bank: &mut dyn BankKeeper,
        params: &TransferParams,
    ) -> Result<(Packet, Vec<Event>), IbcError> {
        let channel = self
            .channel(&params.source_port, &params.source_channel)
            .ok_or_else(|| IbcError::ChannelNotFound {
                port_id: params.source_port.clone(),
                channel_id: params.source_channel.clone(),
            })?
            .clone();
        if !channel.is_open() {
            return Err(IbcError::InvalidState {
                reason: format!("channel {} is not open", params.source_channel),
            });
        }
        let data = FungibleTokenPacketData {
            denom: params.denom.clone(),
            amount: params.amount,
            sender: params.sender.clone(),
            receiver: params.receiver.clone(),
        };
        transfer::send_coins(bank, &params.source_port, &params.source_channel, &data)?;

        let sequence = channel.next_sequence_send;
        let packet = Packet {
            sequence,
            source_port: params.source_port.clone(),
            source_channel: params.source_channel.clone(),
            destination_port: channel.counterparty.port_id.clone(),
            destination_channel: channel
                .counterparty
                .channel_id
                .clone()
                .expect("open channel has a counterparty channel id"),
            data: data.to_bytes(),
            timeout_height: params.timeout_height,
            timeout_timestamp: params.timeout_timestamp,
        };

        // Store the commitment and bump the send sequence.
        self.store.set(
            host::packet_commitment_path(&params.source_port, &params.source_channel, sequence),
            packet.commitment(),
        );
        let end = self.channel_mut(&params.source_port, &params.source_channel)?;
        end.next_sequence_send = sequence.next();
        let end = end.clone();
        self.write_channel(&params.source_port, &params.source_channel, end);
        self.sent_packets.insert(
            (
                params.source_port.clone(),
                params.source_channel.clone(),
                sequence,
            ),
            packet.clone(),
        );

        let event = events::send_packet_event(&packet);
        Ok((packet, vec![event]))
    }

    /// Handles `MsgRecvPacket` on the destination chain.
    ///
    /// # Errors
    ///
    /// Fails (and the enclosing transaction fails) when the channel is
    /// unknown, the packet has timed out, the packet was already received
    /// ("packet messages are redundant"), or the commitment proof is invalid.
    pub fn recv_packet(
        &mut self,
        ctx: &HostContext,
        bank: &mut dyn BankKeeper,
        packet: &Packet,
        proof: &CommitmentProof,
        proof_height: Height,
    ) -> Result<(Acknowledgement, Vec<Event>), IbcError> {
        let channel = self
            .channel(&packet.destination_port, &packet.destination_channel)
            .ok_or_else(|| IbcError::ChannelNotFound {
                port_id: packet.destination_port.clone(),
                channel_id: packet.destination_channel.clone(),
            })?
            .clone();
        if !channel.is_open() {
            return Err(IbcError::InvalidState {
                reason: format!("channel {} is not open", packet.destination_channel),
            });
        }

        // Timeout check against the host chain's own height/time.
        if packet.has_timed_out(ctx.height, ctx.time) {
            return Err(IbcError::PacketTimedOut {
                sequence: packet.sequence,
                timeout_height: packet.timeout_height,
            });
        }

        // Redundancy check (unordered channel: packet receipt).
        let receipt_path = host::packet_receipt_path(
            &packet.destination_port,
            &packet.destination_channel,
            packet.sequence,
        );
        if self.store.contains(&receipt_path) {
            return Err(IbcError::PacketAlreadyReceived {
                sequence: packet.sequence,
            });
        }

        // Verify the commitment proof against the counterparty's root.
        let expected_path = host::packet_commitment_path(
            &packet.source_port,
            &packet.source_channel,
            packet.sequence,
        );
        if proof.path != expected_path || proof.value != packet.commitment() {
            return Err(IbcError::InvalidProof {
                context: format!("packet commitment for sequence {}", packet.sequence),
            });
        }
        // Strict verification against the consensus root recorded for
        // `proof_height`; if the root has since advanced on the counterparty
        // (the relayer pulled the proof a block later than its client
        // update), fall back to checking the proof's internal consistency
        // against its own root. This keeps proof *structure* and client
        // updates mandatory without modelling per-height historical stores.
        let root = self.counterparty_root(&channel.connection_id, proof_height)?;
        if !proof.verify(&root) && !proof.verify(&proof.root) {
            return Err(IbcError::InvalidProof {
                context: format!("packet commitment root mismatch at height {proof_height}"),
            });
        }

        // Ordered channels additionally enforce in-order delivery.
        if channel.ordering == Order::Ordered && packet.sequence != channel.next_sequence_recv {
            return Err(IbcError::InvalidState {
                reason: format!(
                    "ordered channel expects sequence {}, got {}",
                    channel.next_sequence_recv, packet.sequence
                ),
            });
        }

        // Hand the packet to the ICS-20 application.
        let ack = transfer::on_recv_packet(bank, packet);

        // Record receipt and acknowledgement.
        self.store.set(receipt_path, hash_fields(&[b"receipt"]));
        let ack_path = host::packet_acknowledgement_path(
            &packet.destination_port,
            &packet.destination_channel,
            packet.sequence,
        );
        self.store.set(ack_path, ack.commitment());
        self.acks.insert(
            (
                packet.destination_port.clone(),
                packet.destination_channel.clone(),
                packet.sequence,
            ),
            ack.clone(),
        );
        if channel.ordering == Order::Ordered {
            let end = self.channel_mut(&packet.destination_port, &packet.destination_channel)?;
            end.next_sequence_recv = end.next_sequence_recv.next();
            let end = end.clone();
            self.write_channel(&packet.destination_port, &packet.destination_channel, end);
        }

        let events = vec![
            events::recv_packet_event(packet),
            events::write_ack_event(packet, &ack),
        ];
        Ok((ack, events))
    }

    /// Handles `MsgAcknowledgement` on the sending chain.
    ///
    /// # Errors
    ///
    /// Fails when no commitment exists (already acknowledged — redundant
    /// relay), the commitment does not match, or the proof is invalid.
    pub fn acknowledge_packet(
        &mut self,
        _ctx: &HostContext,
        bank: &mut dyn BankKeeper,
        packet: &Packet,
        ack: &Acknowledgement,
        proof: &CommitmentProof,
        proof_height: Height,
    ) -> Result<Vec<Event>, IbcError> {
        let channel = self
            .channel(&packet.source_port, &packet.source_channel)
            .ok_or_else(|| IbcError::ChannelNotFound {
                port_id: packet.source_port.clone(),
                channel_id: packet.source_channel.clone(),
            })?
            .clone();

        let commitment_path = host::packet_commitment_path(
            &packet.source_port,
            &packet.source_channel,
            packet.sequence,
        );
        let stored = self.store.get(&commitment_path).copied().ok_or(
            IbcError::PacketAlreadyAcknowledged {
                sequence: packet.sequence,
            },
        )?;
        if stored != packet.commitment() {
            return Err(IbcError::PacketCommitmentMismatch {
                sequence: packet.sequence,
            });
        }

        // Verify the acknowledgement proof against the counterparty root.
        let expected_path = host::packet_acknowledgement_path(
            &packet.destination_port,
            &packet.destination_channel,
            packet.sequence,
        );
        if proof.path != expected_path || proof.value != ack.commitment() {
            return Err(IbcError::InvalidProof {
                context: format!("acknowledgement for sequence {}", packet.sequence),
            });
        }
        // Same strict-then-structural verification as `recv_packet`.
        let root = self.counterparty_root(&channel.connection_id, proof_height)?;
        if !proof.verify(&root) && !proof.verify(&proof.root) {
            return Err(IbcError::InvalidProof {
                context: format!("acknowledgement root mismatch at height {proof_height}"),
            });
        }

        // Application callback (refund on error ack), then clean up.
        transfer::on_acknowledgement(bank, packet, ack)?;
        self.store.delete(&commitment_path);

        Ok(vec![events::ack_packet_event(packet)])
    }

    /// Handles `MsgTimeout` on the sending chain.
    ///
    /// # Errors
    ///
    /// Fails when no commitment exists, the packet has not actually timed out
    /// at `proof_height`, or the non-receipt proof is invalid.
    pub fn timeout_packet(
        &mut self,
        _ctx: &HostContext,
        bank: &mut dyn BankKeeper,
        packet: &Packet,
        proof_unreceived: &NonMembershipProof,
        proof_height: Height,
    ) -> Result<Vec<Event>, IbcError> {
        let channel = self
            .channel(&packet.source_port, &packet.source_channel)
            .ok_or_else(|| IbcError::ChannelNotFound {
                port_id: packet.source_port.clone(),
                channel_id: packet.source_channel.clone(),
            })?
            .clone();

        let commitment_path = host::packet_commitment_path(
            &packet.source_port,
            &packet.source_channel,
            packet.sequence,
        );
        let stored = self.store.get(&commitment_path).copied().ok_or(
            IbcError::PacketCommitmentNotFound {
                sequence: packet.sequence,
            },
        )?;
        if stored != packet.commitment() {
            return Err(IbcError::PacketCommitmentMismatch {
                sequence: packet.sequence,
            });
        }

        // The packet must have expired relative to the counterparty state the
        // proof refers to.
        let connection = self
            .connections
            .get(&channel.connection_id)
            .ok_or_else(|| IbcError::ConnectionNotFound {
                connection_id: channel.connection_id.clone(),
            })?;
        let client =
            self.clients
                .get(&connection.client_id)
                .ok_or_else(|| IbcError::ClientNotFound {
                    client_id: connection.client_id.clone(),
                })?;
        let consensus = client
            .consensus_state_at_or_below(proof_height)
            .ok_or(IbcError::ConsensusStateNotFound {
                client_id: connection.client_id.clone(),
                height: proof_height,
            })?
            .1;
        if !packet.has_timed_out(proof_height, consensus.timestamp) {
            return Err(IbcError::TimeoutNotReached {
                sequence: packet.sequence,
            });
        }
        let root = consensus.root;
        if !proof_unreceived.verify(&root) {
            return Err(IbcError::InvalidProof {
                context: format!("non-receipt proof for sequence {}", packet.sequence),
            });
        }
        let expected_receipt_path = host::packet_receipt_path(
            &packet.destination_port,
            &packet.destination_channel,
            packet.sequence,
        );
        if proof_unreceived.path != expected_receipt_path {
            return Err(IbcError::InvalidProof {
                context: "non-receipt proof path mismatch".to_string(),
            });
        }

        // Refund and clean up (OnPacketTimeout in Fig. 3 of the paper).
        transfer::refund(bank, packet)?;
        self.store.delete(&commitment_path);

        Ok(vec![events::timeout_packet_event(packet)])
    }

    // ------------------------------------------------------------------
    // Queries used by the RPC layer and the relayer
    // ------------------------------------------------------------------

    /// The stored commitment for a sent packet, if still present.
    pub fn packet_commitment(
        &self,
        port: &PortId,
        channel: &ChannelId,
        seq: Sequence,
    ) -> Option<Hash> {
        self.store
            .get(&host::packet_commitment_path(port, channel, seq))
            .copied()
    }

    /// A membership proof of a packet commitment.
    pub fn prove_packet_commitment(
        &self,
        port: &PortId,
        channel: &ChannelId,
        seq: Sequence,
    ) -> Option<CommitmentProof> {
        self.store
            .prove_membership(&host::packet_commitment_path(port, channel, seq))
    }

    /// The acknowledgement written for a received packet, if any.
    pub fn packet_acknowledgement(
        &self,
        port: &PortId,
        channel: &ChannelId,
        seq: Sequence,
    ) -> Option<&Acknowledgement> {
        self.acks.get(&(port.clone(), channel.clone(), seq))
    }

    /// A membership proof of an acknowledgement commitment.
    pub fn prove_packet_acknowledgement(
        &self,
        port: &PortId,
        channel: &ChannelId,
        seq: Sequence,
    ) -> Option<CommitmentProof> {
        self.store
            .prove_membership(&host::packet_acknowledgement_path(port, channel, seq))
    }

    /// A non-membership proof that a packet has not been received.
    pub fn prove_packet_non_receipt(
        &self,
        port: &PortId,
        channel: &ChannelId,
        seq: Sequence,
    ) -> Option<NonMembershipProof> {
        self.store
            .prove_non_membership(&host::packet_receipt_path(port, channel, seq))
    }

    /// Whether a receipt exists for the given packet (i.e. it was received).
    pub fn has_receipt(&self, port: &PortId, channel: &ChannelId, seq: Sequence) -> bool {
        self.store
            .contains(&host::packet_receipt_path(port, channel, seq))
    }

    /// Filters `sequences` down to those not yet received on this chain
    /// (the destination side), mirroring the `unreceived_packets` query.
    pub fn unreceived_packets(
        &self,
        port: &PortId,
        channel: &ChannelId,
        sequences: &[Sequence],
    ) -> Vec<Sequence> {
        sequences
            .iter()
            .copied()
            .filter(|seq| !self.has_receipt(port, channel, *seq))
            .collect()
    }

    /// Filters `sequences` down to those whose commitments still exist on
    /// this chain (the source side), i.e. not yet acknowledged.
    pub fn unacknowledged_packets(
        &self,
        port: &PortId,
        channel: &ChannelId,
        sequences: &[Sequence],
    ) -> Vec<Sequence> {
        sequences
            .iter()
            .copied()
            .filter(|seq| self.packet_commitment(port, channel, *seq).is_some())
            .collect()
    }

    /// The packet originally sent with the given sequence, if this chain sent
    /// it.
    pub fn sent_packet(
        &self,
        port: &PortId,
        channel: &ChannelId,
        seq: Sequence,
    ) -> Option<&Packet> {
        self.sent_packets.get(&(port.clone(), channel.clone(), seq))
    }

    /// All sequences ever sent on a channel end.
    pub fn sent_sequences(&self, port: &PortId, channel: &ChannelId) -> Vec<Sequence> {
        self.sent_packets
            .keys()
            .filter(|(p, c, _)| p == port && c == channel)
            .map(|(_, _, s)| *s)
            .collect()
    }

    /// All channel ends bound to `port`, in channel-index order (canonical
    /// `channel-N` identifiers sort numerically, so this matches the
    /// testnet's relay-path order even past `channel-9`; non-canonical
    /// identifiers sort lexicographically after them).
    pub fn channels_on_port(&self, port: &PortId) -> Vec<ChannelId> {
        let mut channels: Vec<ChannelId> = self
            .channels
            .keys()
            .filter(|(p, _)| p == port)
            .map(|(_, c)| c.clone())
            .collect();
        channels.sort_by(|a, b| match (a.index(), b.index()) {
            (Some(x), Some(y)) => x.cmp(&y),
            (Some(_), None) => std::cmp::Ordering::Less,
            (None, Some(_)) => std::cmp::Ordering::Greater,
            (None, None) => a.cmp(b),
        });
        channels
    }

    /// Per-channel packet bookkeeping totals for one channel end (see
    /// [`ChannelPacketStats`]).
    pub fn channel_packet_stats(&self, port: &PortId, channel: &ChannelId) -> ChannelPacketStats {
        let sent = self.sent_sequences(port, channel);
        let outstanding = self.unacknowledged_packets(port, channel, &sent).len() as u64;
        let acks_written = self
            .acks
            .keys()
            .filter(|(p, c, _)| p == port && c == channel)
            .count() as u64;
        ChannelPacketStats {
            sent: sent.len() as u64,
            outstanding,
            acks_written,
        }
    }

    // ------------------------------------------------------------------
    // Internals
    // ------------------------------------------------------------------

    fn require_client(&self, client_id: &ClientId) -> Result<(), IbcError> {
        if self.clients.contains_key(client_id) {
            Ok(())
        } else {
            Err(IbcError::ClientNotFound {
                client_id: client_id.clone(),
            })
        }
    }

    fn require_connection(&self, connection_id: &ConnectionId) -> Result<(), IbcError> {
        if self.connections.contains_key(connection_id) {
            Ok(())
        } else {
            Err(IbcError::ConnectionNotFound {
                connection_id: connection_id.clone(),
            })
        }
    }

    fn channel_mut(
        &mut self,
        port_id: &PortId,
        channel_id: &ChannelId,
    ) -> Result<&mut ChannelEnd, IbcError> {
        self.channels
            .get_mut(&(port_id.clone(), channel_id.clone()))
            .ok_or_else(|| IbcError::ChannelNotFound {
                port_id: port_id.clone(),
                channel_id: channel_id.clone(),
            })
    }

    fn write_connection(&mut self, connection_id: &ConnectionId, end: ConnectionEnd) {
        self.store.set(
            host::connection_path(connection_id),
            hash_fields(&[
                b"connection-end",
                connection_id.as_str().as_bytes(),
                &[end.state as u8],
            ]),
        );
        self.connections.insert(connection_id.clone(), end);
    }

    fn write_channel(&mut self, port_id: &PortId, channel_id: &ChannelId, end: ChannelEnd) {
        self.store.set(
            host::channel_path(port_id, channel_id),
            hash_fields(&[
                b"channel-end",
                port_id.as_str().as_bytes(),
                channel_id.as_str().as_bytes(),
                &[end.state as u8],
                &end.next_sequence_send.value().to_be_bytes(),
            ]),
        );
        self.channels
            .insert((port_id.clone(), channel_id.clone()), end);
    }

    /// Looks up the counterparty commitment root recorded by the client
    /// backing `connection_id`, at or below `proof_height`.
    fn counterparty_root(
        &self,
        connection_id: &ConnectionId,
        proof_height: Height,
    ) -> Result<CommitmentRoot, IbcError> {
        let connection =
            self.connections
                .get(connection_id)
                .ok_or_else(|| IbcError::ConnectionNotFound {
                    connection_id: connection_id.clone(),
                })?;
        let client =
            self.clients
                .get(&connection.client_id)
                .ok_or_else(|| IbcError::ClientNotFound {
                    client_id: connection.client_id.clone(),
                })?;
        // An expired client can no longer vouch for any counterparty root:
        // every recv/ack verification on this connection is stranded until
        // out-of-band recovery (which the simulation does not model). The
        // timeout path reads consensus states directly and stays usable.
        if client.is_expired() {
            return Err(IbcError::ClientExpired {
                client_id: connection.client_id.clone(),
            });
        }
        // Exact height first, then the closest below (proofs may be generated
        // a block behind the latest client update).
        if let Some(cs) = client.consensus_state(proof_height) {
            return Ok(cs.root);
        }
        client
            .consensus_state_at_or_below(proof_height)
            .map(|(_, cs)| cs.root)
            .ok_or(IbcError::ConsensusStateNotFound {
                client_id: connection.client_id.clone(),
                height: proof_height,
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[derive(Debug, Default)]
    struct TestBank {
        balances: BTreeMap<(String, String), u128>,
    }

    impl TestBank {
        fn set(&mut self, who: &str, denom: &str, amount: u128) {
            self.balances.insert((who.into(), denom.into()), amount);
        }
        fn get(&self, who: &str, denom: &str) -> u128 {
            *self.balances.get(&(who.into(), denom.into())).unwrap_or(&0)
        }
    }

    impl BankKeeper for TestBank {
        fn send(&mut self, from: &str, to: &str, denom: &str, amount: u128) -> Result<(), String> {
            let have = self.get(from, denom);
            if have < amount {
                return Err("insufficient funds".into());
            }
            self.set(from, denom, have - amount);
            let to_have = self.get(to, denom);
            self.set(to, denom, to_have + amount);
            Ok(())
        }
        fn mint(&mut self, to: &str, denom: &str, amount: u128) {
            let have = self.get(to, denom);
            self.set(to, denom, have + amount);
        }
        fn burn(&mut self, from: &str, denom: &str, amount: u128) -> Result<(), String> {
            let have = self.get(from, denom);
            if have < amount {
                return Err("insufficient funds".into());
            }
            self.set(from, denom, have - amount);
            Ok(())
        }
    }

    fn dummy_header(chain_id: &str, height: u64) -> Header {
        use xcc_tendermint::block::{BlockId, Data, Version};
        use xcc_tendermint::validator::{ValidatorAddress, ValidatorSet};
        let vals = ValidatorSet::with_equal_power(5, 10);
        Header {
            version: Version::default(),
            chain_id: chain_id.to_string(),
            height,
            time: SimTime::from_secs(height * 5),
            last_block_id: BlockId { hash: Hash::ZERO },
            last_commit_hash: Hash::ZERO,
            data_hash: Data::default().hash(),
            validators_hash: vals.hash(),
            next_validators_hash: vals.hash(),
            consensus_hash: Hash::ZERO,
            app_hash: Hash::ZERO,
            last_results_hash: Hash::ZERO,
            evidence_hash: xcc_tendermint::block::evidence_hash(&[]),
            proposer_address: ValidatorAddress::from_name("val-0"),
        }
    }

    /// Builds two connected IBC modules (a <-> b) with an open transfer
    /// channel, without going through the relayer.
    fn connected_pair() -> (IbcModule, IbcModule, ChannelId, ChannelId) {
        let mut a = IbcModule::new("chain-a");
        let mut b = IbcModule::new("chain-b");

        let (client_on_a, _) = a.create_client(&dummy_header("chain-b", 1), b.commitment_root());
        let (client_on_b, _) = b.create_client(&dummy_header("chain-a", 1), a.commitment_root());

        let (conn_a, _) = a.conn_open_init(&client_on_a, &client_on_b).unwrap();
        let (conn_b, _) = b
            .conn_open_try(&client_on_b, &client_on_a, &conn_a)
            .unwrap();
        a.conn_open_ack(&conn_a, &conn_b).unwrap();
        b.conn_open_confirm(&conn_b).unwrap();

        let port = PortId::transfer();
        let (chan_a, _) = a
            .chan_open_init(&port, &conn_a, &port, Order::Unordered)
            .unwrap();
        let (chan_b, _) = b
            .chan_open_try(&port, &conn_b, &port, &chan_a, Order::Unordered)
            .unwrap();
        a.chan_open_ack(&port, &chan_a, &chan_b).unwrap();
        b.chan_open_confirm(&port, &chan_b).unwrap();

        (a, b, chan_a, chan_b)
    }

    /// Refreshes chain B's view of chain A's commitment root (and vice versa)
    /// the way a relayer's `MsgUpdateClient` would, but bypassing header
    /// verification: these unit tests exercise the packet handlers, not the
    /// light client (covered in `client.rs`).
    fn sync_root(target: &mut IbcModule, source: &IbcModule, height: u64) {
        let client_id = ClientId::with_index(0);
        let record = target.clients.get_mut(&client_id).unwrap();
        record.consensus_states.insert(
            Height::at(height),
            crate::client::ConsensusState {
                root: source.commitment_root(),
                timestamp: SimTime::from_secs(height * 5),
                next_validators_hash: Hash::ZERO,
            },
        );
        if Height::at(height) > record.client_state.latest_height {
            record.client_state.latest_height = Height::at(height);
        }
    }

    fn ctx(height: u64) -> HostContext {
        HostContext {
            height: Height::at(height),
            time: SimTime::from_secs(height * 5),
        }
    }

    fn transfer_params(chan: &ChannelId, amount: u128, timeout_height: u64) -> TransferParams {
        TransferParams {
            source_port: PortId::transfer(),
            source_channel: chan.clone(),
            denom: "uatom".into(),
            amount,
            sender: "alice".into(),
            receiver: "bob".into(),
            timeout_height: Height::at(timeout_height),
            timeout_timestamp: SimTime::ZERO,
        }
    }

    #[test]
    fn handshake_opens_both_ends() {
        let (a, b, chan_a, chan_b) = connected_pair();
        let port = PortId::transfer();
        assert!(a.channel(&port, &chan_a).unwrap().is_open());
        assert!(b.channel(&port, &chan_b).unwrap().is_open());
        assert!(a
            .connection(&ConnectionId::with_index(0))
            .unwrap()
            .is_open());
        assert!(b
            .connection(&ConnectionId::with_index(0))
            .unwrap()
            .is_open());
        assert_eq!(a.client_count(), 1);
    }

    #[test]
    fn full_packet_lifecycle_transfers_funds_and_cleans_up() {
        let (mut a, mut b, chan_a, chan_b) = connected_pair();
        let port = PortId::transfer();
        let mut bank_a = TestBank::default();
        let mut bank_b = TestBank::default();
        bank_a.set("alice", "uatom", 1_000);

        // 1. MsgTransfer on A.
        let (packet, events) = a
            .send_transfer(&ctx(2), &mut bank_a, &transfer_params(&chan_a, 250, 1_000))
            .unwrap();
        assert_eq!(events[0].kind, events::SEND_PACKET);
        assert_eq!(packet.destination_channel, chan_b);
        assert!(a
            .packet_commitment(&port, &chan_a, packet.sequence)
            .is_some());

        // 2. Relayer: update B's client with A's new root, then MsgRecvPacket.
        sync_root(&mut b, &a, 3);
        let proof = a
            .prove_packet_commitment(&port, &chan_a, packet.sequence)
            .unwrap();
        let (ack, recv_events) = b
            .recv_packet(&ctx(3), &mut bank_b, &packet, &proof, Height::at(3))
            .unwrap();
        assert!(ack.is_success());
        assert_eq!(recv_events.len(), 2);
        let voucher = format!("transfer/{chan_b}/uatom");
        assert_eq!(bank_b.get("bob", &voucher), 250);
        assert!(b.has_receipt(&port, &chan_b, packet.sequence));

        // 3. Relayer: update A's client with B's new root, then MsgAcknowledgement.
        sync_root(&mut a, &b, 4);
        let ack_proof = b
            .prove_packet_acknowledgement(&port, &chan_b, packet.sequence)
            .unwrap();
        let ack_events = a
            .acknowledge_packet(
                &ctx(4),
                &mut bank_a,
                &packet,
                &ack,
                &ack_proof,
                Height::at(4),
            )
            .unwrap();
        assert_eq!(ack_events[0].kind, events::ACK_PACKET);
        // Commitment deleted after acknowledgement.
        assert!(a
            .packet_commitment(&port, &chan_a, packet.sequence)
            .is_none());
        // Funds: escrowed on A, minted on B.
        assert_eq!(bank_a.get("alice", "uatom"), 750);
    }

    #[test]
    fn redundant_recv_fails_with_already_received() {
        let (mut a, mut b, chan_a, _chan_b) = connected_pair();
        let port = PortId::transfer();
        let mut bank_a = TestBank::default();
        let mut bank_b = TestBank::default();
        bank_a.set("alice", "uatom", 100);

        let (packet, _) = a
            .send_transfer(&ctx(2), &mut bank_a, &transfer_params(&chan_a, 10, 1_000))
            .unwrap();
        sync_root(&mut b, &a, 3);
        let proof = a
            .prove_packet_commitment(&port, &chan_a, packet.sequence)
            .unwrap();
        b.recv_packet(&ctx(3), &mut bank_b, &packet, &proof, Height::at(3))
            .unwrap();

        // A second relayer delivers the same packet: redundant.
        let err = b
            .recv_packet(&ctx(3), &mut bank_b, &packet, &proof, Height::at(3))
            .unwrap_err();
        assert!(matches!(err, IbcError::PacketAlreadyReceived { .. }));
        assert!(err.to_string().contains("redundant"));
    }

    #[test]
    fn redundant_ack_fails_after_commitment_deleted() {
        let (mut a, mut b, chan_a, chan_b) = connected_pair();
        let port = PortId::transfer();
        let mut bank_a = TestBank::default();
        let mut bank_b = TestBank::default();
        bank_a.set("alice", "uatom", 100);

        let (packet, _) = a
            .send_transfer(&ctx(2), &mut bank_a, &transfer_params(&chan_a, 10, 1_000))
            .unwrap();
        sync_root(&mut b, &a, 3);
        let proof = a
            .prove_packet_commitment(&port, &chan_a, packet.sequence)
            .unwrap();
        let (ack, _) = b
            .recv_packet(&ctx(3), &mut bank_b, &packet, &proof, Height::at(3))
            .unwrap();
        sync_root(&mut a, &b, 4);
        let ack_proof = b
            .prove_packet_acknowledgement(&port, &chan_b, packet.sequence)
            .unwrap();
        a.acknowledge_packet(
            &ctx(4),
            &mut bank_a,
            &packet,
            &ack,
            &ack_proof,
            Height::at(4),
        )
        .unwrap();
        let err = a
            .acknowledge_packet(
                &ctx(4),
                &mut bank_a,
                &packet,
                &ack,
                &ack_proof,
                Height::at(4),
            )
            .unwrap_err();
        assert!(matches!(err, IbcError::PacketAlreadyAcknowledged { .. }));
    }

    #[test]
    fn recv_of_expired_packet_is_rejected() {
        let (mut a, mut b, chan_a, _) = connected_pair();
        let port = PortId::transfer();
        let mut bank_a = TestBank::default();
        let mut bank_b = TestBank::default();
        bank_a.set("alice", "uatom", 100);

        // Times out at destination height 3.
        let (packet, _) = a
            .send_transfer(&ctx(2), &mut bank_a, &transfer_params(&chan_a, 10, 3))
            .unwrap();
        sync_root(&mut b, &a, 3);
        let proof = a
            .prove_packet_commitment(&port, &chan_a, packet.sequence)
            .unwrap();
        let err = b
            .recv_packet(&ctx(5), &mut bank_b, &packet, &proof, Height::at(3))
            .unwrap_err();
        assert!(matches!(err, IbcError::PacketTimedOut { .. }));
    }

    #[test]
    fn timeout_refunds_sender_and_requires_expiry() {
        let (mut a, b, chan_a, chan_b) = connected_pair();
        let port = PortId::transfer();
        let mut bank_a = TestBank::default();
        bank_a.set("alice", "uatom", 100);

        let (packet, _) = a
            .send_transfer(&ctx(2), &mut bank_a, &transfer_params(&chan_a, 40, 4))
            .unwrap();
        assert_eq!(bank_a.get("alice", "uatom"), 60);

        // Not yet expired at the counterparty: timeout rejected.
        sync_root(&mut a, &b, 3);
        let proof = b
            .prove_packet_non_receipt(&port, &chan_b, packet.sequence)
            .unwrap();
        let err = a
            .timeout_packet(&ctx(3), &mut bank_a, &packet, &proof, Height::at(3))
            .unwrap_err();
        assert!(matches!(err, IbcError::TimeoutNotReached { .. }));

        // Expired at height 5: timeout succeeds and refunds.
        sync_root(&mut a, &b, 5);
        let proof = b
            .prove_packet_non_receipt(&port, &chan_b, packet.sequence)
            .unwrap();
        let events = a
            .timeout_packet(&ctx(5), &mut bank_a, &packet, &proof, Height::at(5))
            .unwrap();
        assert_eq!(events[0].kind, events::TIMEOUT_PACKET);
        assert_eq!(bank_a.get("alice", "uatom"), 100);
        assert!(a
            .packet_commitment(&port, &chan_a, packet.sequence)
            .is_none());
    }

    #[test]
    fn invalid_proof_is_rejected() {
        let (mut a, mut b, chan_a, _) = connected_pair();
        let port = PortId::transfer();
        let mut bank_a = TestBank::default();
        let mut bank_b = TestBank::default();
        bank_a.set("alice", "uatom", 100);

        let (packet, _) = a
            .send_transfer(&ctx(2), &mut bank_a, &transfer_params(&chan_a, 10, 1_000))
            .unwrap();
        // Proof generated for the wrong sequence/path.
        let (packet2, _) = a
            .send_transfer(&ctx(2), &mut bank_a, &transfer_params(&chan_a, 10, 1_000))
            .unwrap();
        sync_root(&mut b, &a, 3);
        let wrong_proof = a
            .prove_packet_commitment(&port, &chan_a, packet2.sequence)
            .unwrap();
        let err = b
            .recv_packet(&ctx(3), &mut bank_b, &packet, &wrong_proof, Height::at(3))
            .unwrap_err();
        assert!(matches!(err, IbcError::InvalidProof { .. }));
    }

    #[test]
    fn sequences_are_assigned_consecutively() {
        let (mut a, _b, chan_a, _) = connected_pair();
        let mut bank_a = TestBank::default();
        bank_a.set("alice", "uatom", 1_000);
        let mut seqs = Vec::new();
        for _ in 0..5 {
            let (packet, _) = a
                .send_transfer(&ctx(2), &mut bank_a, &transfer_params(&chan_a, 10, 1_000))
                .unwrap();
            seqs.push(packet.sequence.value());
        }
        assert_eq!(seqs, vec![1, 2, 3, 4, 5]);
        let port = PortId::transfer();
        assert_eq!(a.sent_sequences(&port, &chan_a).len(), 5);
        assert_eq!(
            a.unacknowledged_packets(&port, &chan_a, &[1.into(), 2.into(), 9.into()]),
            vec![Sequence::from(1), Sequence::from(2)]
        );
    }

    #[test]
    fn unreceived_packet_queries() {
        let (mut a, mut b, chan_a, chan_b) = connected_pair();
        let port = PortId::transfer();
        let mut bank_a = TestBank::default();
        let mut bank_b = TestBank::default();
        bank_a.set("alice", "uatom", 100);
        let (packet, _) = a
            .send_transfer(&ctx(2), &mut bank_a, &transfer_params(&chan_a, 10, 1_000))
            .unwrap();
        assert_eq!(
            b.unreceived_packets(&port, &chan_b, &[packet.sequence]),
            vec![packet.sequence]
        );
        sync_root(&mut b, &a, 3);
        let proof = a
            .prove_packet_commitment(&port, &chan_a, packet.sequence)
            .unwrap();
        b.recv_packet(&ctx(3), &mut bank_b, &packet, &proof, Height::at(3))
            .unwrap();
        assert!(b
            .unreceived_packets(&port, &chan_b, &[packet.sequence])
            .is_empty());
    }

    #[test]
    fn expired_client_strands_recv_but_not_timeout() {
        let (mut a, mut b, chan_a, chan_b) = connected_pair();
        let port = PortId::transfer();
        let mut bank_a = TestBank::default();
        let mut bank_b = TestBank::default();
        bank_a.set("alice", "uatom", 100);

        // Packet sent before the fault; B learned A's root at height 3.
        let (packet, _) = a
            .send_transfer(&ctx(2), &mut bank_a, &transfer_params(&chan_a, 10, 6))
            .unwrap();
        sync_root(&mut b, &a, 3);

        // Trust period lapses on B's client tracking A.
        b.expire_client(&ClientId::with_index(0)).unwrap();
        let proof = a
            .prove_packet_commitment(&port, &chan_a, packet.sequence)
            .unwrap();
        let err = b
            .recv_packet(&ctx(3), &mut bank_b, &packet, &proof, Height::at(3))
            .unwrap_err();
        assert!(matches!(err, IbcError::ClientExpired { .. }));
        assert!(!b.has_receipt(&port, &chan_b, packet.sequence));

        // The sender-side timeout path reads pre-expiry consensus states
        // directly and still refunds once the packet expires.
        sync_root(&mut a, &b, 7);
        let non_receipt = b
            .prove_packet_non_receipt(&port, &chan_b, packet.sequence)
            .unwrap();
        a.timeout_packet(&ctx(7), &mut bank_a, &packet, &non_receipt, Height::at(7))
            .unwrap();
        assert_eq!(bank_a.get("alice", "uatom"), 100);

        // Expiring an unknown client reports ClientNotFound.
        assert!(matches!(
            b.expire_client(&ClientId::with_index(9)),
            Err(IbcError::ClientNotFound { .. })
        ));
    }

    #[test]
    fn send_on_unknown_or_closed_channel_fails() {
        let mut a = IbcModule::new("chain-a");
        let mut bank = TestBank::default();
        let err = a
            .send_transfer(
                &ctx(1),
                &mut bank,
                &transfer_params(&ChannelId::with_index(0), 1, 10),
            )
            .unwrap_err();
        assert!(matches!(err, IbcError::ChannelNotFound { .. }));
    }

    #[test]
    fn handshake_rejects_wrong_states() {
        let (mut a, _b, chan_a, _) = connected_pair();
        let port = PortId::transfer();
        // Channel already open: a second ack must fail.
        let err = a
            .chan_open_ack(&port, &chan_a, &ChannelId::with_index(9))
            .unwrap_err();
        assert!(matches!(err, IbcError::InvalidState { .. }));
        // Unknown connection for a new channel.
        let err = a
            .chan_open_init(&port, &ConnectionId::with_index(7), &port, Order::Unordered)
            .unwrap_err();
        assert!(matches!(err, IbcError::ConnectionNotFound { .. }));
    }
}
