//! IBC packets, timeouts, commitments and acknowledgements (ICS-04).

use serde::{Deserialize, Serialize};

use crate::height::Height;
use crate::ids::{ChannelId, PortId, Sequence};
use xcc_sim::SimTime;
use xcc_tendermint::hash::{hash_fields, Hash};

/// An IBC packet: opaque application data routed between two channel ends.
///
/// # Example
///
/// ```rust
/// use xcc_ibc::height::Height;
/// use xcc_ibc::ids::{ChannelId, PortId, Sequence};
/// use xcc_ibc::packet::Packet;
/// use xcc_sim::SimTime;
///
/// let packet = Packet {
///     sequence: Sequence::FIRST,
///     source_port: PortId::transfer(),
///     source_channel: ChannelId::with_index(0),
///     destination_port: PortId::transfer(),
///     destination_channel: ChannelId::with_index(0),
///     data: b"{\"amount\":\"1\"}".to_vec(),
///     timeout_height: Height::at(1_000),
///     timeout_timestamp: SimTime::ZERO,
/// };
/// assert!(!packet.commitment().is_zero());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Packet {
    /// Sequence number on the sending channel end.
    pub sequence: Sequence,
    /// Port the packet was sent from.
    pub source_port: PortId,
    /// Channel the packet was sent from.
    pub source_channel: ChannelId,
    /// Port the packet is addressed to.
    pub destination_port: PortId,
    /// Channel the packet is addressed to.
    pub destination_channel: ChannelId,
    /// Application-opaque payload.
    pub data: Vec<u8>,
    /// Height on the destination chain after which the packet times out
    /// (zero for no height timeout).
    pub timeout_height: Height,
    /// Destination-chain timestamp after which the packet times out
    /// ([`SimTime::ZERO`] for no timestamp timeout).
    pub timeout_timestamp: SimTime,
}

impl Packet {
    /// The commitment to this packet stored by the sending chain: a digest of
    /// the timeout and the payload, as prescribed by ICS-04.
    pub fn commitment(&self) -> Hash {
        hash_fields(&[
            b"packet-commitment",
            &self.timeout_height.revision.to_be_bytes(),
            &self.timeout_height.height.to_be_bytes(),
            &self.timeout_timestamp.as_nanos().to_be_bytes(),
            &self.data,
        ])
    }

    /// Whether the packet has timed out with respect to the destination
    /// chain's current height and time.
    pub fn has_timed_out(&self, dest_height: Height, dest_time: SimTime) -> bool {
        let height_expired = !self.timeout_height.is_zero() && dest_height >= self.timeout_height;
        let time_expired =
            self.timeout_timestamp != SimTime::ZERO && dest_time >= self.timeout_timestamp;
        height_expired || time_expired
    }

    /// Approximate encoded size in bytes, used by the RPC response-size cost
    /// model.
    pub fn encoded_size(&self) -> usize {
        self.data.len()
            + self.source_port.as_str().len()
            + self.source_channel.as_str().len()
            + self.destination_port.as_str().len()
            + self.destination_channel.as_str().len()
            + 64
    }
}

/// The acknowledgement an application writes after receiving a packet.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum Acknowledgement {
    /// The application processed the packet successfully.
    Success {
        /// Application-defined result bytes (ICS-20 writes `AQ==`, i.e. `[1]`).
        result: Vec<u8>,
    },
    /// The application rejected the packet.
    Error {
        /// Human-readable error description.
        error: String,
    },
}

impl Acknowledgement {
    /// The standard ICS-20 success acknowledgement.
    pub fn success() -> Self {
        Acknowledgement::Success { result: vec![1] }
    }

    /// An error acknowledgement with the given reason.
    pub fn error(reason: impl Into<String>) -> Self {
        Acknowledgement::Error {
            error: reason.into(),
        }
    }

    /// `true` for a success acknowledgement.
    pub fn is_success(&self) -> bool {
        matches!(self, Acknowledgement::Success { .. })
    }

    /// The commitment to this acknowledgement stored by the receiving chain.
    pub fn commitment(&self) -> Hash {
        match self {
            Acknowledgement::Success { result } => hash_fields(&[b"ack-success", result]),
            Acknowledgement::Error { error } => hash_fields(&[b"ack-error", error.as_bytes()]),
        }
    }

    /// Approximate encoded size in bytes.
    pub fn encoded_size(&self) -> usize {
        match self {
            Acknowledgement::Success { result } => result.len() + 16,
            Acknowledgement::Error { error } => error.len() + 16,
        }
    }
}

/// A receipt recording that an unordered channel received a packet sequence.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Receipt;

#[cfg(test)]
mod tests {
    use super::*;

    fn packet(seq: u64, data: &[u8], timeout_height: u64) -> Packet {
        Packet {
            sequence: Sequence::from(seq),
            source_port: PortId::transfer(),
            source_channel: ChannelId::with_index(0),
            destination_port: PortId::transfer(),
            destination_channel: ChannelId::with_index(1),
            data: data.to_vec(),
            timeout_height: Height::at(timeout_height),
            timeout_timestamp: SimTime::ZERO,
        }
    }

    #[test]
    fn commitment_binds_data_and_timeout() {
        let a = packet(1, b"x", 100);
        let b = packet(1, b"y", 100);
        let c = packet(1, b"x", 101);
        assert_ne!(a.commitment(), b.commitment());
        assert_ne!(a.commitment(), c.commitment());
        assert_eq!(
            a.commitment(),
            packet(2, b"x", 100).commitment(),
            "the sequence is not part of the commitment value; it is part of the store path"
        );
    }

    #[test]
    fn timeout_by_height() {
        let p = packet(1, b"x", 100);
        assert!(!p.has_timed_out(Height::at(99), SimTime::ZERO));
        assert!(p.has_timed_out(Height::at(100), SimTime::ZERO));
        assert!(p.has_timed_out(Height::at(101), SimTime::ZERO));
    }

    #[test]
    fn timeout_by_timestamp() {
        let mut p = packet(1, b"x", 0);
        p.timeout_timestamp = SimTime::from_secs(50);
        assert!(!p.has_timed_out(Height::at(10), SimTime::from_secs(49)));
        assert!(p.has_timed_out(Height::at(10), SimTime::from_secs(50)));
    }

    #[test]
    fn no_timeout_when_both_zero() {
        let p = packet(1, b"x", 0);
        assert!(!p.has_timed_out(
            Height::at(u64::MAX),
            SimTime::from_secs(u64::MAX / 2_000_000_000)
        ));
    }

    #[test]
    fn acknowledgement_variants() {
        let ok = Acknowledgement::success();
        let err = Acknowledgement::error("insufficient funds");
        assert!(ok.is_success());
        assert!(!err.is_success());
        assert_ne!(ok.commitment(), err.commitment());
        assert!(ok.encoded_size() > 0 && err.encoded_size() > 0);
    }

    #[test]
    fn encoded_size_grows_with_data() {
        assert!(
            packet(1, &[0u8; 500], 10).encoded_size() > packet(1, &[0u8; 10], 10).encoded_size()
        );
    }
}
