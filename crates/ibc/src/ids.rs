//! Identifiers used throughout the IBC protocol: clients, connections,
//! channels, ports and packet sequences.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Validates an ICS-24 identifier: lowercase alphanumerics plus `-`, `_` and
/// `.`, between 2 and 64 characters.
fn valid_identifier(s: &str) -> bool {
    (2..=64).contains(&s.len())
        && s.chars()
            .all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || matches!(c, '-' | '_' | '.'))
}

macro_rules! identifier {
    ($(#[$doc:meta])* $name:ident, $prefix:expr) => {
        $(#[$doc])*
        #[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
        pub struct $name(String);

        impl $name {
            /// Wraps a raw identifier string.
            ///
            /// # Panics
            ///
            /// Panics if the string is not a valid ICS-24 identifier.
            pub fn new(id: impl Into<String>) -> Self {
                let id = id.into();
                assert!(valid_identifier(&id), concat!(stringify!($name), " must be a valid ICS-24 identifier, got {:?}"), id);
                $name(id)
            }

            /// The canonical counter-based identifier, e.g. `channel-0`.
            pub fn with_index(index: u64) -> Self {
                $name(format!("{}-{}", $prefix, index))
            }

            /// The identifier as a string slice.
            pub fn as_str(&self) -> &str {
                &self.0
            }

            /// The counter of a canonical `prefix-N` identifier, if this is
            /// one (e.g. `channel-3` → `Some(3)`).
            pub fn index(&self) -> Option<u64> {
                self.0
                    .rsplit_once('-')
                    .and_then(|(_, tail)| tail.parse().ok())
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                f.write_str(&self.0)
            }
        }

        impl std::str::FromStr for $name {
            type Err = InvalidIdentifier;

            fn from_str(s: &str) -> Result<Self, Self::Err> {
                if valid_identifier(s) {
                    Ok($name(s.to_string()))
                } else {
                    Err(InvalidIdentifier { value: s.to_string() })
                }
            }
        }
    };
}

/// Error returned when parsing an invalid ICS-24 identifier.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidIdentifier {
    /// The rejected string.
    pub value: String,
}

impl fmt::Display for InvalidIdentifier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid ICS-24 identifier: {:?}", self.value)
    }
}

impl std::error::Error for InvalidIdentifier {}

identifier!(
    /// Identifies a light client hosted on a chain (ICS-02), e.g.
    /// `07-tendermint-0`.
    ClientId,
    "07-tendermint"
);

identifier!(
    /// Identifies a connection between two chains (ICS-03), e.g.
    /// `connection-0`.
    ConnectionId,
    "connection"
);

identifier!(
    /// Identifies a channel over a connection (ICS-04), e.g. `channel-0`.
    ChannelId,
    "channel"
);

identifier!(
    /// Identifies the application module bound to a channel end, e.g.
    /// `transfer` for ICS-20 fungible token transfers.
    PortId,
    "port"
);

identifier!(
    /// Identifies a chain in a testnet topology, e.g. `ibc-0`. Chain
    /// identifiers follow the same ICS-24 character rules as the other
    /// identifiers so they can appear in client/connection metadata.
    ChainId,
    "chain"
);

impl PortId {
    /// The well-known port of the ICS-20 fungible token transfer module.
    pub fn transfer() -> Self {
        PortId("transfer".to_string())
    }
}

/// A packet sequence number, scoped to a (port, channel) pair and strictly
/// increasing from 1.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Sequence(pub u64);

impl Sequence {
    /// The first sequence number used on a fresh channel.
    pub const FIRST: Sequence = Sequence(1);

    /// The next sequence after this one.
    pub fn next(self) -> Sequence {
        Sequence(self.0 + 1)
    }

    /// The raw value.
    pub fn value(self) -> u64 {
        self.0
    }
}

impl fmt::Display for Sequence {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u64> for Sequence {
    fn from(v: u64) -> Self {
        Sequence(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::str::FromStr;

    #[test]
    fn canonical_identifiers() {
        assert_eq!(ClientId::with_index(0).as_str(), "07-tendermint-0");
        assert_eq!(ConnectionId::with_index(3).as_str(), "connection-3");
        assert_eq!(ChannelId::with_index(7).as_str(), "channel-7");
        assert_eq!(PortId::transfer().as_str(), "transfer");
    }

    #[test]
    fn parsing_accepts_valid_and_rejects_invalid() {
        assert!(ChannelId::from_str("channel-0").is_ok());
        assert!(ChannelId::from_str("C").is_err());
        assert!(ChannelId::from_str("has space").is_err());
        assert!(ChannelId::from_str("UPPER").is_err());
        let err = PortId::from_str("!").unwrap_err();
        assert!(err.to_string().contains("invalid ICS-24 identifier"));
    }

    #[test]
    #[should_panic(expected = "valid ICS-24 identifier")]
    fn constructor_panics_on_invalid() {
        ClientId::new("");
    }

    #[test]
    fn sequences_increment() {
        let s = Sequence::FIRST;
        assert_eq!(s.value(), 1);
        assert_eq!(s.next().value(), 2);
        assert_eq!(Sequence::from(9).to_string(), "9");
    }

    #[test]
    fn identifiers_order_and_display() {
        let a = ChannelId::with_index(0);
        let b = ChannelId::with_index(1);
        assert!(a < b);
        assert_eq!(a.to_string(), "channel-0");
    }

    #[test]
    fn canonical_identifiers_expose_their_index() {
        assert_eq!(ChannelId::with_index(7).index(), Some(7));
        assert_eq!(ClientId::with_index(0).index(), Some(0));
        assert_eq!(PortId::transfer().index(), None);
        assert_eq!(ChannelId::new("mychannel").index(), None);
    }

    #[test]
    fn chain_identifiers_follow_ics24_rules() {
        assert_eq!(ChainId::new("ibc-0").as_str(), "ibc-0");
        assert_eq!(ChainId::with_index(2).as_str(), "chain-2");
        assert!(ChainId::from_str("ibc-hub").is_ok());
        assert!(ChainId::from_str("Gaia").is_err());
    }
}
