//! Revision-aware block heights (ICS-02).

use std::fmt;

use serde::{Deserialize, Serialize};

/// A block height qualified by a revision number, as used by IBC clients to
/// survive chain upgrades.
///
/// # Example
///
/// ```rust
/// use xcc_ibc::height::Height;
///
/// let h = Height::new(0, 42);
/// assert!(h < Height::new(0, 43));
/// assert!(h < Height::new(1, 1));
/// ```
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Height {
    /// The chain revision (bumped on hard forks / upgrades).
    pub revision: u64,
    /// The block height within the revision.
    pub height: u64,
}

impl Height {
    /// Creates a height.
    pub fn new(revision: u64, height: u64) -> Self {
        Height { revision, height }
    }

    /// A height in revision zero, the common case in this workspace.
    pub fn at(height: u64) -> Self {
        Height {
            revision: 0,
            height,
        }
    }

    /// The zero height, used to mean "no timeout height".
    pub const ZERO: Height = Height {
        revision: 0,
        height: 0,
    };

    /// `true` if this is the zero sentinel.
    pub fn is_zero(&self) -> bool {
        self.revision == 0 && self.height == 0
    }

    /// The next consecutive height in the same revision.
    pub fn increment(&self) -> Height {
        Height {
            revision: self.revision,
            height: self.height + 1,
        }
    }

    /// Adds `n` blocks within the same revision.
    pub fn add(&self, n: u64) -> Height {
        Height {
            revision: self.revision,
            height: self.height + n,
        }
    }
}

impl fmt::Display for Height {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}-{}", self.revision, self.height)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_revision_then_height() {
        assert!(Height::new(0, 100) < Height::new(1, 1));
        assert!(Height::new(0, 5) < Height::new(0, 6));
        assert_eq!(Height::at(7), Height::new(0, 7));
    }

    #[test]
    fn zero_sentinel() {
        assert!(Height::ZERO.is_zero());
        assert!(!Height::at(1).is_zero());
    }

    #[test]
    fn arithmetic_helpers() {
        assert_eq!(Height::at(5).increment(), Height::at(6));
        assert_eq!(Height::at(5).add(10), Height::at(15));
    }

    #[test]
    fn display_format() {
        assert_eq!(Height::new(2, 30).to_string(), "2-30");
    }
}
