//! The IBC commitment store (ICS-23/24 style).
//!
//! Every provable piece of IBC state — packet commitments, receipts,
//! acknowledgements, channel and connection ends — is written under a
//! well-known path into this store. The store exposes a Merkle root that the
//! host chain folds into its application hash, and can produce membership
//! and non-membership proofs that counterparty chains verify against the
//! consensus state recorded by their light clients.

use std::cell::OnceCell;
use std::collections::BTreeMap;

use serde::{Deserialize, Serialize, Value};

use xcc_tendermint::hash::{hash_fields, Hash};
use xcc_tendermint::merkle::{MerkleProof, MerkleTree};

/// A commitment root: the Merkle root of the IBC store at some height.
pub type CommitmentRoot = Hash;

/// A key/value commitment store with Merkle roots and proofs.
///
/// # Example
///
/// ```rust
/// use xcc_ibc::commitment::CommitmentStore;
/// use xcc_tendermint::hash::sha256;
///
/// let mut store = CommitmentStore::new();
/// store.set("commitments/ports/transfer/channels/channel-0/sequences/1", sha256(b"data"));
/// let root = store.root();
/// let proof = store.prove_membership("commitments/ports/transfer/channels/channel-0/sequences/1").unwrap();
/// assert!(proof.verify(&root));
/// ```
/// # Proof-generation caching
///
/// The Merkle tree over the entries is memoized: building it hashes every
/// leaf (O(n)), and the relayer's data pulls request one proof per packet
/// sequence, so the uncached store paid O(n) hashing *per proof* — the
/// dominant cost of whole-experiment replays. The cache is invalidated by
/// every mutation ([`set`](CommitmentStore::set) /
/// [`delete`](CommitmentStore::delete)) and rebuilt lazily on the next
/// [`root`](CommitmentStore::root) or proof, so roots and proofs stay
/// bit-identical to the uncached construction (pinned by the equivalence
/// test in `xcc_tendermint::merkle`).
#[derive(Debug, Clone, Default)]
pub struct CommitmentStore {
    entries: BTreeMap<String, Hash>,
    /// Memoized Merkle tree over `entries`, excluded from comparison and
    /// the wire format; cleared on every mutation.
    // xcc-lint: allow(serde-field-coverage, reason = "in-memory memo of the Merkle tree; rebuilt from `entries`, must never itself appear in the wire encoding")
    tree: OnceCell<MerkleTree>,
}

impl PartialEq for CommitmentStore {
    /// Compares the committed entries only: whether the Merkle tree memo is
    /// built is an evaluation detail, not state.
    fn eq(&self, other: &Self) -> bool {
        self.entries == other.entries
    }
}

impl Eq for CommitmentStore {}

impl Serialize for CommitmentStore {
    fn to_value(&self) -> Value {
        Value::Map(vec![("entries".to_string(), self.entries.to_value())])
    }
}

impl Deserialize for CommitmentStore {
    fn from_value(v: &Value) -> Result<Self, serde::Error> {
        let m = v
            .as_map()
            .ok_or_else(|| serde::Error::custom("expected map for struct CommitmentStore"))?;
        Ok(CommitmentStore {
            entries: serde::de_field(m, "entries")?,
            tree: OnceCell::new(),
        })
    }
}

/// A membership proof for one path in a [`CommitmentStore`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CommitmentProof {
    /// The proven path.
    pub path: String,
    /// The committed value at that path.
    pub value: Hash,
    /// The Merkle inclusion proof of the `(path, value)` leaf.
    merkle: Option<MerkleProof>,
    /// The root this proof was generated against.
    pub root: CommitmentRoot,
}

impl CommitmentProof {
    /// Verifies the proof against an externally trusted root (typically the
    /// consensus state stored by a light client).
    pub fn verify(&self, trusted_root: &CommitmentRoot) -> bool {
        if trusted_root != &self.root {
            return false;
        }
        match &self.merkle {
            Some(merkle) => merkle.verify(trusted_root, &leaf_encoding(&self.path, &self.value)),
            // A proof that lost its Merkle branch (e.g. after serialization
            // over the simulated wire) degrades to root equality plus the
            // committed value; the value itself is still checked by handlers.
            None => true,
        }
    }

    /// Approximate encoded size of the proof in bytes, used by the RPC
    /// response-size cost model.
    pub fn encoded_size(&self) -> usize {
        let branch = self
            .merkle
            .as_ref()
            .map(|m| m.siblings.len() * 32)
            .unwrap_or(0);
        self.path.len() + 32 + 32 + branch + 32
    }
}

/// A proof that a path is absent from the store (used by timeout handling).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct NonMembershipProof {
    /// The absent path.
    pub path: String,
    /// The root this proof was generated against.
    pub root: CommitmentRoot,
}

impl NonMembershipProof {
    /// Verifies the proof against a trusted root.
    ///
    /// The simulation's non-membership proof is root-anchored only: handlers
    /// additionally check local state, which preserves the protocol-level
    /// behaviour the paper's experiments rely on.
    pub fn verify(&self, trusted_root: &CommitmentRoot) -> bool {
        trusted_root == &self.root
    }
}

fn leaf_encoding(path: &str, value: &Hash) -> Vec<u8> {
    let mut bytes = Vec::with_capacity(path.len() + 33);
    bytes.extend_from_slice(path.as_bytes());
    bytes.push(0);
    bytes.extend_from_slice(value.as_bytes());
    bytes
}

impl CommitmentStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of committed entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// `true` when the store has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Sets the commitment at `path`.
    pub fn set(&mut self, path: impl Into<String>, value: Hash) {
        self.entries.insert(path.into(), value);
        self.tree.take();
    }

    /// Reads the commitment at `path`.
    pub fn get(&self, path: &str) -> Option<&Hash> {
        self.entries.get(path)
    }

    /// Whether the store has a commitment at `path`.
    pub fn contains(&self, path: &str) -> bool {
        self.entries.contains_key(path)
    }

    /// Deletes the commitment at `path`, returning it if present.
    pub fn delete(&mut self, path: &str) -> Option<Hash> {
        let removed = self.entries.remove(path);
        if removed.is_some() {
            self.tree.take();
        }
        removed
    }

    /// Iterates over paths with the given prefix.
    pub fn iter_prefix<'a>(
        &'a self,
        prefix: &'a str,
    ) -> impl Iterator<Item = (&'a String, &'a Hash)> + 'a {
        self.entries
            .range(prefix.to_string()..)
            .take_while(move |(k, _)| k.starts_with(prefix))
    }

    /// The Merkle root over all `(path, value)` leaves in path order.
    ///
    /// The root of an empty store is a fixed domain-separated digest so that
    /// "empty" is distinguishable from "absent".
    pub fn root(&self) -> CommitmentRoot {
        if self.entries.is_empty() {
            return hash_fields(&[b"empty-ibc-store"]);
        }
        self.tree().root()
    }

    /// Produces a membership proof for `path`, if it exists.
    pub fn prove_membership(&self, path: &str) -> Option<CommitmentProof> {
        let value = *self.entries.get(path)?;
        let below = (std::ops::Bound::Unbounded, std::ops::Bound::Excluded(path));
        let index = self.entries.range::<str, _>(below).count();
        let tree = self.tree();
        let merkle = tree.prove(index)?;
        Some(CommitmentProof {
            path: path.to_string(),
            value,
            merkle: Some(merkle),
            root: tree.root(),
        })
    }

    /// The memoized Merkle tree over the current entries, built on first use
    /// after a mutation.
    fn tree(&self) -> &MerkleTree {
        self.tree.get_or_init(|| {
            let leaves: Vec<Vec<u8>> = self
                .entries
                .iter()
                .map(|(k, v)| leaf_encoding(k, v))
                .collect();
            MerkleTree::build(leaves.iter().map(|l| l.as_slice()))
        })
    }

    /// Produces a non-membership proof for `path`, if it is indeed absent.
    pub fn prove_non_membership(&self, path: &str) -> Option<NonMembershipProof> {
        if self.entries.contains_key(path) {
            return None;
        }
        Some(NonMembershipProof {
            path: path.to_string(),
            root: self.root(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcc_tendermint::hash::sha256;

    #[test]
    fn set_get_delete_roundtrip() {
        let mut s = CommitmentStore::new();
        assert!(s.is_empty());
        s.set("a/b/1", sha256(b"one"));
        assert_eq!(s.get("a/b/1"), Some(&sha256(b"one")));
        assert!(s.contains("a/b/1"));
        assert_eq!(s.delete("a/b/1"), Some(sha256(b"one")));
        assert!(!s.contains("a/b/1"));
        assert_eq!(s.delete("a/b/1"), None);
    }

    #[test]
    fn root_changes_with_content() {
        let mut s = CommitmentStore::new();
        let empty_root = s.root();
        s.set("x", sha256(b"1"));
        let one_root = s.root();
        s.set("y", sha256(b"2"));
        let two_root = s.root();
        assert_ne!(empty_root, one_root);
        assert_ne!(one_root, two_root);
        s.delete("y");
        assert_eq!(s.root(), one_root);
    }

    #[test]
    fn membership_proofs_verify_against_matching_root_only() {
        let mut s = CommitmentStore::new();
        for i in 0..20 {
            s.set(
                format!("commitments/{i}"),
                sha256(format!("v{i}").as_bytes()),
            );
        }
        let root = s.root();
        let proof = s.prove_membership("commitments/7").unwrap();
        assert!(proof.verify(&root));
        assert_eq!(proof.value, sha256(b"v7"));

        // Stale root (state changed after proof generation) fails.
        s.set("commitments/99", sha256(b"new"));
        assert!(!proof.verify(&s.root()));
    }

    #[test]
    fn proof_for_missing_path_is_none() {
        let s = CommitmentStore::new();
        assert!(s.prove_membership("nope").is_none());
    }

    #[test]
    fn non_membership_proofs() {
        let mut s = CommitmentStore::new();
        s.set("present", sha256(b"x"));
        let proof = s.prove_non_membership("absent").unwrap();
        assert!(proof.verify(&s.root()));
        assert!(s.prove_non_membership("present").is_none());
        // Root mismatch fails.
        s.set("other", sha256(b"y"));
        assert!(!proof.verify(&s.root()));
    }

    #[test]
    fn prefix_iteration() {
        let mut s = CommitmentStore::new();
        s.set("acks/1", sha256(b"a"));
        s.set("acks/2", sha256(b"b"));
        s.set("commitments/1", sha256(b"c"));
        let acks: Vec<&String> = s.iter_prefix("acks/").map(|(k, _)| k).collect();
        assert_eq!(acks.len(), 2);
        assert!(acks.iter().all(|k| k.starts_with("acks/")));
    }

    #[test]
    fn memoized_tree_invalidates_on_every_mutation() {
        let mut cached = CommitmentStore::new();
        for i in 0..13 {
            cached.set(
                format!("commitments/{i}"),
                sha256(format!("v{i}").as_bytes()),
            );
        }
        // Interleave reads (which build the memo) with mutations: after each
        // step the root and proofs must equal a fresh, never-mutated store's.
        let reference = |s: &CommitmentStore| {
            let mut fresh = CommitmentStore::new();
            for (k, v) in s.entries.iter() {
                fresh.set(k.clone(), *v);
            }
            fresh
        };
        assert_eq!(cached.root(), reference(&cached).root());

        cached.set("commitments/5", sha256(b"rewritten"));
        assert_eq!(cached.root(), reference(&cached).root());
        assert_eq!(
            cached.prove_membership("commitments/5"),
            reference(&cached).prove_membership("commitments/5")
        );

        cached.delete("commitments/9");
        assert_eq!(cached.root(), reference(&cached).root());
        assert_eq!(
            cached.prove_membership("commitments/12"),
            reference(&cached).prove_membership("commitments/12")
        );
        assert!(cached
            .prove_membership("commitments/12")
            .unwrap()
            .verify(&cached.root()));

        // A clone carries correct state even if taken mid-memo.
        let cloned = cached.clone();
        assert_eq!(cloned.root(), cached.root());
    }

    #[test]
    fn proof_encoded_size_is_positive() {
        let mut s = CommitmentStore::new();
        s.set("p", sha256(b"v"));
        let proof = s.prove_membership("p").unwrap();
        assert!(proof.encoded_size() > 64);
    }
}
