//! ICS-02 client semantics: client states, consensus states and updates via
//! the embedded Tendermint light client.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::commitment::CommitmentRoot;
use crate::error::IbcError;
use crate::height::Height;
use crate::ids::ClientId;
use xcc_sim::SimTime;
use xcc_tendermint::block::Header;
use xcc_tendermint::hash::Hash;
use xcc_tendermint::light::LightClient;
use xcc_tendermint::validator::ValidatorSet;
use xcc_tendermint::vote::Commit;

/// The client state of a Tendermint light client (ICS-07 flavour).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ClientState {
    /// Chain id of the counterparty chain this client tracks.
    pub chain_id: String,
    /// The latest height the client has verified.
    pub latest_height: Height,
    /// Whether the client has been frozen due to misbehaviour.
    pub frozen: bool,
    /// Whether the client's trust period has lapsed (`ClientExpiry` fault).
    ///
    /// Unlike freezing, expiry cannot be repaired by in-band messages: real
    /// IBC requires a governance-style client substitution, which the
    /// simulation does not model, so an expired client strands its channel
    /// for the remainder of the run.
    pub expired: bool,
}

impl ClientState {
    /// Creates a client state at its initial trusted height.
    pub fn new(chain_id: impl Into<String>, latest_height: Height) -> Self {
        ClientState {
            chain_id: chain_id.into(),
            latest_height,
            frozen: false,
            expired: false,
        }
    }
}

/// A consensus state: the commitment root and timestamp the counterparty
/// chain had at a given height, as verified by the light client.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConsensusState {
    /// The counterparty's IBC commitment root at this height.
    pub root: CommitmentRoot,
    /// Header timestamp at this height.
    pub timestamp: SimTime,
    /// Hash of the validator set expected at the next height.
    pub next_validators_hash: Hash,
}

/// A header bundle submitted to update a client (the equivalent of
/// `MsgUpdateClient`'s header field).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientUpdate {
    /// The new header of the tracked chain.
    pub header: Header,
    /// The commit certifying the header.
    pub commit: Commit,
    /// The validator set that signed the commit.
    pub validators: ValidatorSet,
    /// The counterparty's IBC commitment root committed by this header.
    ///
    /// On a real chain this is carried inside `header.app_hash`; the
    /// simulated host keeps the IBC store root separate from the full
    /// application hash, so updates carry it explicitly.
    pub ibc_root: CommitmentRoot,
}

/// A hosted light client: client state plus verified consensus states.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClientRecord {
    /// The client's identifier on the host chain.
    pub client_id: ClientId,
    /// Current client state.
    pub client_state: ClientState,
    /// Verified consensus states by height.
    pub consensus_states: BTreeMap<Height, ConsensusState>,
    /// The embedded header-verification state machine.
    pub light_client: LightClient,
}

impl ClientRecord {
    /// Creates a client from an initial trusted header (`MsgCreateClient`).
    pub fn create(client_id: ClientId, initial_header: &Header, ibc_root: CommitmentRoot) -> Self {
        let mut light_client = LightClient::new(initial_header.chain_id.clone());
        light_client.trust_initial(initial_header);
        let height = Height::at(initial_header.height);
        let mut consensus_states = BTreeMap::new();
        consensus_states.insert(
            height,
            ConsensusState {
                root: ibc_root,
                timestamp: initial_header.time,
                next_validators_hash: initial_header.next_validators_hash,
            },
        );
        ClientRecord {
            client_id,
            client_state: ClientState::new(initial_header.chain_id.clone(), height),
            consensus_states,
            light_client,
        }
    }

    /// The latest verified height.
    pub fn latest_height(&self) -> Height {
        self.client_state.latest_height
    }

    /// The consensus state at exactly `height`, if the client has verified it.
    pub fn consensus_state(&self, height: Height) -> Option<&ConsensusState> {
        self.consensus_states.get(&height)
    }

    /// The newest consensus state at or below `height`, used when a proof was
    /// generated slightly behind the client's latest update.
    pub fn consensus_state_at_or_below(
        &self,
        height: Height,
    ) -> Option<(&Height, &ConsensusState)> {
        self.consensus_states.range(..=height).next_back()
    }

    /// Applies a verified header update (`MsgUpdateClient`).
    ///
    /// # Errors
    ///
    /// Fails if the client is frozen or expired, or light-client verification
    /// rejects the header.
    pub fn update(&mut self, update: &ClientUpdate) -> Result<Height, IbcError> {
        if self.client_state.frozen {
            return Err(IbcError::ClientUpdateFailed {
                reason: format!("client {} is frozen", self.client_id),
            });
        }
        if self.client_state.expired {
            return Err(IbcError::ClientExpired {
                client_id: self.client_id.clone(),
            });
        }
        self.light_client
            .update(&update.header, &update.commit, &update.validators)
            .map_err(|e| IbcError::ClientUpdateFailed {
                reason: e.to_string(),
            })?;
        let height = Height::at(update.header.height);
        self.consensus_states.insert(
            height,
            ConsensusState {
                root: update.ibc_root,
                timestamp: update.header.time,
                next_validators_hash: update.header.next_validators_hash,
            },
        );
        if height > self.client_state.latest_height {
            self.client_state.latest_height = height;
        }
        Ok(height)
    }

    /// Freezes the client (misbehaviour handling).
    pub fn freeze(&mut self) {
        self.client_state.frozen = true;
    }

    /// Marks the client's trust period as lapsed (`ClientExpiry` fault).
    /// Irreversible within a run; see [`ClientState::expired`].
    pub fn expire(&mut self) {
        self.client_state.expired = true;
    }

    /// Whether the client's trust period has lapsed.
    pub fn is_expired(&self) -> bool {
        self.client_state.expired
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use xcc_tendermint::abci::{Application, CheckTxResult, DeliverTxResult};
    use xcc_tendermint::block::RawTx;
    use xcc_tendermint::hash::sha256;
    use xcc_tendermint::mempool::MempoolConfig;
    use xcc_tendermint::node::Node;
    use xcc_tendermint::params::{ConsensusParams, ConsensusTimingModel};

    #[derive(Default)]
    struct NullApp;
    impl Application for NullApp {
        fn check_tx(&mut self, _tx: &RawTx) -> CheckTxResult {
            CheckTxResult {
                code: 0,
                log: String::new(),
                gas_wanted: 1,
                sender: "x".into(),
                sequence: 0,
            }
        }
        fn begin_block(&mut self, _header: &Header) {}
        fn deliver_tx(&mut self, _tx: &RawTx) -> DeliverTxResult {
            DeliverTxResult {
                code: 0,
                log: String::new(),
                gas_used: 1,
                gas_wanted: 1,
                events: vec![],
            }
        }
        fn end_block(&mut self, _height: u64) {}
        fn commit(&mut self) -> Hash {
            Hash::ZERO
        }
    }

    fn source_chain(blocks: u64) -> Node<NullApp> {
        let mut node = Node::new(
            "chain-a",
            ValidatorSet::with_equal_power(5, 10),
            ConsensusParams::default(),
            ConsensusTimingModel::default(),
            MempoolConfig::default(),
            NullApp,
        );
        for i in 0..blocks {
            node.produce_block(SimTime::from_secs(5 * (i + 1)));
        }
        node
    }

    fn update_for(node: &Node<NullApp>, height: u64, root: CommitmentRoot) -> ClientUpdate {
        ClientUpdate {
            header: node.block_at(height).unwrap().block.header.clone(),
            commit: node.commit_for(height).unwrap().clone(),
            validators: node.validators().clone(),
            ibc_root: root,
        }
    }

    #[test]
    fn create_and_update_client() {
        let node = source_chain(3);
        let genesis_header = &node.block_at(1).unwrap().block.header;
        let mut client =
            ClientRecord::create(ClientId::with_index(0), genesis_header, sha256(b"root-1"));
        assert_eq!(client.latest_height(), Height::at(1));

        let h = client
            .update(&update_for(&node, 2, sha256(b"root-2")))
            .unwrap();
        assert_eq!(h, Height::at(2));
        client
            .update(&update_for(&node, 3, sha256(b"root-3")))
            .unwrap();
        assert_eq!(client.latest_height(), Height::at(3));
        assert_eq!(
            client.consensus_state(Height::at(2)).unwrap().root,
            sha256(b"root-2")
        );
    }

    #[test]
    fn update_rejects_replay_and_frozen_clients() {
        let node = source_chain(2);
        let mut client = ClientRecord::create(
            ClientId::with_index(0),
            &node.block_at(1).unwrap().block.header,
            sha256(b"root-1"),
        );
        client
            .update(&update_for(&node, 2, sha256(b"root-2")))
            .unwrap();
        // Replaying height 2 fails (non-monotonic).
        assert!(client
            .update(&update_for(&node, 2, sha256(b"root-2")))
            .is_err());

        client.freeze();
        assert!(matches!(
            client.update(&update_for(&node, 2, sha256(b"root-2"))),
            Err(IbcError::ClientUpdateFailed { .. })
        ));
    }

    #[test]
    fn update_rejects_expired_clients_permanently() {
        let node = source_chain(2);
        let mut client = ClientRecord::create(
            ClientId::with_index(0),
            &node.block_at(1).unwrap().block.header,
            sha256(b"root-1"),
        );
        assert!(!client.is_expired());
        client.expire();
        assert!(client.is_expired());
        // A perfectly valid header is rejected once the trust period lapsed:
        // unlike a stale cache, there is no in-band recovery.
        assert!(matches!(
            client.update(&update_for(&node, 2, sha256(b"root-2"))),
            Err(IbcError::ClientExpired { .. })
        ));
        // Consensus states verified before expiry remain readable (timeout
        // proofs still work against pre-expiry roots).
        assert!(client.consensus_state(Height::at(1)).is_some());
    }

    #[test]
    fn consensus_state_lookup_at_or_below() {
        let node = source_chain(3);
        let mut client = ClientRecord::create(
            ClientId::with_index(0),
            &node.block_at(1).unwrap().block.header,
            sha256(b"root-1"),
        );
        client
            .update(&update_for(&node, 3, sha256(b"root-3")))
            .unwrap();
        // Height 2 was skipped: lookups at height 2 fall back to height 1.
        let (h, cs) = client.consensus_state_at_or_below(Height::at(2)).unwrap();
        assert_eq!(*h, Height::at(1));
        assert_eq!(cs.root, sha256(b"root-1"));
        assert!(client.consensus_state(Height::at(2)).is_none());
    }
}
