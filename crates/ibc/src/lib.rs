//! Inter-Blockchain Communication (IBC) protocol implementation.
//!
//! This crate implements the protocol layer the paper evaluates: ICS-02
//! clients backed by a Tendermint light client, ICS-03 connections, ICS-04
//! channels with the full packet life cycle (send / receive / acknowledge /
//! timeout, Figs. 2 and 3 of the paper), the ICS-20 fungible token transfer
//! application, ICS-24 host paths and a commitment store with membership and
//! non-membership proofs.
//!
//! The crate is host-agnostic: a chain embeds [`module::IbcModule`], supplies
//! a [`transfer::BankKeeper`] for token movements, and emits the returned
//! ABCI events so that relayers can observe protocol progress.
//!
//! # Example
//!
//! ```rust
//! use xcc_ibc::module::IbcModule;
//!
//! let module = IbcModule::new("chain-a");
//! assert_eq!(module.chain_id(), "chain-a");
//! assert_eq!(module.client_count(), 0);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod channel;
pub mod client;
pub mod commitment;
pub mod connection;
pub mod error;
pub mod events;
pub mod height;
pub mod host;
pub mod ids;
pub mod module;
pub mod packet;
pub mod transfer;
