//! ICS-20 fungible token transfer application.
//!
//! This module implements the token-movement rules the paper's workload
//! exercises: escrowing native tokens on the source chain, minting voucher
//! denominations on the destination, burning vouchers when they travel back,
//! and refunding on failed or timed-out transfers.

use serde::{Deserialize, Serialize};

use crate::error::IbcError;
use crate::ids::{ChannelId, PortId};
use crate::packet::{Acknowledgement, Packet};
use xcc_tendermint::hash::hash_fields;

/// The payload of an ICS-20 packet.
///
/// # Example
///
/// ```rust
/// use xcc_ibc::transfer::FungibleTokenPacketData;
///
/// let data = FungibleTokenPacketData {
///     denom: "uatom".into(),
///     amount: 1_000,
///     sender: "user-0".into(),
///     receiver: "user-0".into(),
/// };
/// let bytes = data.to_bytes();
/// assert_eq!(FungibleTokenPacketData::from_bytes(&bytes).unwrap(), data);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct FungibleTokenPacketData {
    /// Denomination being transferred, possibly trace-prefixed
    /// (`transfer/channel-0/uatom`).
    pub denom: String,
    /// Amount of the denomination.
    pub amount: u128,
    /// Sender address on the source chain.
    pub sender: String,
    /// Receiver address on the destination chain.
    pub receiver: String,
}

impl FungibleTokenPacketData {
    /// Serialises the packet data to bytes.
    ///
    /// The on-the-wire format is a simple length-unambiguous text encoding;
    /// its size is comparable to the JSON the real ICS-20 module produces,
    /// which is what matters for the RPC/WebSocket cost models.
    pub fn to_bytes(&self) -> Vec<u8> {
        format!(
            "denom={}\namount={}\nsender={}\nreceiver={}",
            self.denom, self.amount, self.sender, self.receiver
        )
        .into_bytes()
    }

    /// Parses packet data previously produced by [`Self::to_bytes`].
    pub fn from_bytes(bytes: &[u8]) -> Result<Self, IbcError> {
        let text = std::str::from_utf8(bytes).map_err(|_| IbcError::Transfer {
            reason: "packet data is not valid UTF-8".into(),
        })?;
        let mut denom = None;
        let mut amount = None;
        let mut sender = None;
        let mut receiver = None;
        for line in text.lines() {
            let Some((key, value)) = line.split_once('=') else {
                continue;
            };
            match key {
                "denom" => denom = Some(value.to_string()),
                "amount" => amount = value.parse::<u128>().ok(),
                "sender" => sender = Some(value.to_string()),
                "receiver" => receiver = Some(value.to_string()),
                _ => {}
            }
        }
        match (denom, amount, sender, receiver) {
            (Some(denom), Some(amount), Some(sender), Some(receiver)) => {
                Ok(FungibleTokenPacketData {
                    denom,
                    amount,
                    sender,
                    receiver,
                })
            }
            _ => Err(IbcError::Transfer {
                reason: "malformed ICS-20 packet data".into(),
            }),
        }
    }
}

/// Abstraction over the host chain's bank module, implemented by `xcc-chain`.
pub trait BankKeeper {
    /// Moves `amount` of `denom` from `from` to `to`.
    ///
    /// # Errors
    ///
    /// Fails when `from` has an insufficient balance.
    fn send(&mut self, from: &str, to: &str, denom: &str, amount: u128) -> Result<(), String>;

    /// Creates `amount` of `denom` in `to`'s balance.
    fn mint(&mut self, to: &str, denom: &str, amount: u128);

    /// Destroys `amount` of `denom` from `from`'s balance.
    ///
    /// # Errors
    ///
    /// Fails when `from` has an insufficient balance.
    fn burn(&mut self, from: &str, denom: &str, amount: u128) -> Result<(), String>;
}

/// The escrow account that holds tokens sent over a channel.
pub fn escrow_address(port_id: &PortId, channel_id: &ChannelId) -> String {
    let digest = hash_fields(&[
        b"ics20-escrow",
        port_id.as_str().as_bytes(),
        channel_id.as_str().as_bytes(),
    ]);
    format!("escrow-{}", digest.short())
}

/// The trace prefix a (port, channel) pair adds to a denomination.
pub fn trace_prefix(port_id: &PortId, channel_id: &ChannelId) -> String {
    format!("{port_id}/{channel_id}/")
}

/// `true` when, from the perspective of the chain sending over
/// `(port, channel)`, the denomination originated on this chain — i.e. the
/// denom is *not* prefixed by this channel end's own trace.
pub fn sender_is_source(port_id: &PortId, channel_id: &ChannelId, denom: &str) -> bool {
    !denom.starts_with(&trace_prefix(port_id, channel_id))
}

/// The voucher denomination minted on the receiving chain for an incoming
/// transfer that is *not* returning home: the destination trace is prepended.
pub fn prefixed_denom(dest_port: &PortId, dest_channel: &ChannelId, denom: &str) -> String {
    format!("{}{}", trace_prefix(dest_port, dest_channel), denom)
}

/// Escrows or burns tokens on the sending chain, implementing the send half
/// of ICS-20.
///
/// # Errors
///
/// Fails when the sender's balance is insufficient.
pub fn send_coins(
    bank: &mut dyn BankKeeper,
    source_port: &PortId,
    source_channel: &ChannelId,
    data: &FungibleTokenPacketData,
) -> Result<(), IbcError> {
    if sender_is_source(source_port, source_channel, &data.denom) {
        // Token native to this chain: escrow it.
        let escrow = escrow_address(source_port, source_channel);
        bank.send(&data.sender, &escrow, &data.denom, data.amount)
            .map_err(|reason| IbcError::Transfer { reason })
    } else {
        // Voucher returning home: burn it.
        bank.burn(&data.sender, &data.denom, data.amount)
            .map_err(|reason| IbcError::Transfer { reason })
    }
}

/// Processes an incoming ICS-20 packet on the receiving chain, returning the
/// acknowledgement to write. Never fails at the IBC layer: application errors
/// are reported through an error acknowledgement, as the spec requires.
pub fn on_recv_packet(bank: &mut dyn BankKeeper, packet: &Packet) -> Acknowledgement {
    let data = match FungibleTokenPacketData::from_bytes(&packet.data) {
        Ok(data) => data,
        Err(e) => return Acknowledgement::error(e.to_string()),
    };
    let source_prefix = trace_prefix(&packet.source_port, &packet.source_channel);
    if let Some(base) = data.denom.strip_prefix(&source_prefix) {
        // The token is returning to its origin chain: release it from escrow.
        let escrow = escrow_address(&packet.destination_port, &packet.destination_channel);
        match bank.send(&escrow, &data.receiver, base, data.amount) {
            Ok(()) => Acknowledgement::success(),
            Err(reason) => Acknowledgement::error(reason),
        }
    } else {
        // Foreign token: mint a voucher carrying the destination trace.
        let voucher = prefixed_denom(
            &packet.destination_port,
            &packet.destination_channel,
            &data.denom,
        );
        bank.mint(&data.receiver, &voucher, data.amount);
        Acknowledgement::success()
    }
}

/// Handles the acknowledgement of a previously sent packet on the sending
/// chain: a success acknowledgement completes the transfer, an error
/// acknowledgement refunds the sender.
///
/// # Errors
///
/// Fails only if a refund is required and the escrow/burn bookkeeping is
/// inconsistent (which would indicate a host-chain bug).
pub fn on_acknowledgement(
    bank: &mut dyn BankKeeper,
    packet: &Packet,
    ack: &Acknowledgement,
) -> Result<(), IbcError> {
    if ack.is_success() {
        Ok(())
    } else {
        refund(bank, packet)
    }
}

/// Refunds the sender of a packet that timed out or was rejected.
///
/// # Errors
///
/// Fails if the escrowed funds cannot be returned (inconsistent host state).
pub fn refund(bank: &mut dyn BankKeeper, packet: &Packet) -> Result<(), IbcError> {
    let data = FungibleTokenPacketData::from_bytes(&packet.data)?;
    if sender_is_source(&packet.source_port, &packet.source_channel, &data.denom) {
        let escrow = escrow_address(&packet.source_port, &packet.source_channel);
        bank.send(&escrow, &data.sender, &data.denom, data.amount)
            .map_err(|reason| IbcError::Transfer { reason })
    } else {
        bank.mint(&data.sender, &data.denom, data.amount);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::height::Height;
    use crate::ids::Sequence;
    use std::collections::BTreeMap;
    use xcc_sim::SimTime;

    /// An in-memory bank for exercising the ICS-20 rules.
    #[derive(Debug, Default)]
    struct TestBank {
        balances: BTreeMap<(String, String), u128>,
    }

    impl TestBank {
        fn set(&mut self, who: &str, denom: &str, amount: u128) {
            self.balances.insert((who.into(), denom.into()), amount);
        }
        fn get(&self, who: &str, denom: &str) -> u128 {
            *self.balances.get(&(who.into(), denom.into())).unwrap_or(&0)
        }
    }

    impl BankKeeper for TestBank {
        fn send(&mut self, from: &str, to: &str, denom: &str, amount: u128) -> Result<(), String> {
            let have = self.get(from, denom);
            if have < amount {
                return Err(format!(
                    "insufficient funds: {from} has {have} {denom}, needs {amount}"
                ));
            }
            self.set(from, denom, have - amount);
            let to_have = self.get(to, denom);
            self.set(to, denom, to_have + amount);
            Ok(())
        }
        fn mint(&mut self, to: &str, denom: &str, amount: u128) {
            let have = self.get(to, denom);
            self.set(to, denom, have + amount);
        }
        fn burn(&mut self, from: &str, denom: &str, amount: u128) -> Result<(), String> {
            let have = self.get(from, denom);
            if have < amount {
                return Err(format!("insufficient funds to burn: {have} < {amount}"));
            }
            self.set(from, denom, have - amount);
            Ok(())
        }
    }

    fn packet(data: &FungibleTokenPacketData, src_chan: u64, dst_chan: u64) -> Packet {
        Packet {
            sequence: Sequence::FIRST,
            source_port: PortId::transfer(),
            source_channel: ChannelId::with_index(src_chan),
            destination_port: PortId::transfer(),
            destination_channel: ChannelId::with_index(dst_chan),
            data: data.to_bytes(),
            timeout_height: Height::at(1_000),
            timeout_timestamp: SimTime::ZERO,
        }
    }

    #[test]
    fn packet_data_roundtrip_and_errors() {
        let data = FungibleTokenPacketData {
            denom: "transfer/channel-0/uatom".into(),
            amount: u128::MAX,
            sender: "alice".into(),
            receiver: "bob".into(),
        };
        assert_eq!(
            FungibleTokenPacketData::from_bytes(&data.to_bytes()).unwrap(),
            data
        );
        assert!(FungibleTokenPacketData::from_bytes(b"garbage").is_err());
        assert!(FungibleTokenPacketData::from_bytes(&[0xff, 0xfe]).is_err());
    }

    #[test]
    fn source_detection_follows_denom_trace() {
        let port = PortId::transfer();
        let chan = ChannelId::with_index(0);
        assert!(sender_is_source(&port, &chan, "uatom"));
        assert!(!sender_is_source(&port, &chan, "transfer/channel-0/uatom"));
        // A different channel's trace still counts as "source" for this one.
        assert!(sender_is_source(&port, &chan, "transfer/channel-9/uatom"));
    }

    #[test]
    fn native_token_is_escrowed_then_minted_as_voucher() {
        let mut bank_a = TestBank::default();
        bank_a.set("alice", "uatom", 1_000);
        let data = FungibleTokenPacketData {
            denom: "uatom".into(),
            amount: 400,
            sender: "alice".into(),
            receiver: "bob".into(),
        };
        // Chain A escrows.
        send_coins(
            &mut bank_a,
            &PortId::transfer(),
            &ChannelId::with_index(0),
            &data,
        )
        .unwrap();
        let escrow = escrow_address(&PortId::transfer(), &ChannelId::with_index(0));
        assert_eq!(bank_a.get("alice", "uatom"), 600);
        assert_eq!(bank_a.get(&escrow, "uatom"), 400);

        // Chain B mints a voucher with the destination trace.
        let mut bank_b = TestBank::default();
        let p = packet(&data, 0, 1);
        let ack = on_recv_packet(&mut bank_b, &p);
        assert!(ack.is_success());
        assert_eq!(bank_b.get("bob", "transfer/channel-1/uatom"), 400);
    }

    #[test]
    fn voucher_returning_home_is_burned_then_unescrowed() {
        // Setup: chain A has 400 uatom escrowed for channel-0 (from a previous
        // transfer), and chain B holds the corresponding voucher.
        let mut bank_a = TestBank::default();
        let escrow_a = escrow_address(&PortId::transfer(), &ChannelId::with_index(0));
        bank_a.set(&escrow_a, "uatom", 400);

        let mut bank_b = TestBank::default();
        bank_b.set("bob", "transfer/channel-1/uatom", 400);

        // Bob sends the voucher back: chain B burns it.
        let data = FungibleTokenPacketData {
            denom: "transfer/channel-1/uatom".into(),
            amount: 150,
            sender: "bob".into(),
            receiver: "alice".into(),
        };
        send_coins(
            &mut bank_b,
            &PortId::transfer(),
            &ChannelId::with_index(1),
            &data,
        )
        .unwrap();
        assert_eq!(bank_b.get("bob", "transfer/channel-1/uatom"), 250);

        // Chain A receives: denom is prefixed with the packet's source trace
        // (transfer/channel-1), so it strips it and releases escrow.
        let p = packet(&data, 1, 0);
        let ack = on_recv_packet(&mut bank_a, &p);
        assert!(ack.is_success(), "ack: {ack:?}");
        assert_eq!(bank_a.get("alice", "uatom"), 150);
        assert_eq!(bank_a.get(&escrow_a, "uatom"), 250);
    }

    #[test]
    fn insufficient_funds_produce_error_ack_not_panic() {
        let mut bank = TestBank::default();
        // Returning voucher but nothing escrowed on this side.
        let data = FungibleTokenPacketData {
            denom: "transfer/channel-1/uatom".into(),
            amount: 10,
            sender: "bob".into(),
            receiver: "alice".into(),
        };
        let p = packet(&data, 1, 0);
        let ack = on_recv_packet(&mut bank, &p);
        assert!(!ack.is_success());
    }

    #[test]
    fn error_ack_refunds_escrowed_sender() {
        let mut bank_a = TestBank::default();
        bank_a.set("alice", "uatom", 100);
        let data = FungibleTokenPacketData {
            denom: "uatom".into(),
            amount: 100,
            sender: "alice".into(),
            receiver: "bob".into(),
        };
        send_coins(
            &mut bank_a,
            &PortId::transfer(),
            &ChannelId::with_index(0),
            &data,
        )
        .unwrap();
        assert_eq!(bank_a.get("alice", "uatom"), 0);

        let p = packet(&data, 0, 1);
        on_acknowledgement(&mut bank_a, &p, &Acknowledgement::error("rejected")).unwrap();
        assert_eq!(bank_a.get("alice", "uatom"), 100);

        // A success ack does not move funds again.
        on_acknowledgement(&mut bank_a, &p, &Acknowledgement::success()).unwrap();
        assert_eq!(bank_a.get("alice", "uatom"), 100);
    }

    #[test]
    fn timeout_refund_for_burned_voucher_re_mints() {
        let mut bank_b = TestBank::default();
        bank_b.set("bob", "transfer/channel-1/uatom", 50);
        let data = FungibleTokenPacketData {
            denom: "transfer/channel-1/uatom".into(),
            amount: 50,
            sender: "bob".into(),
            receiver: "alice".into(),
        };
        send_coins(
            &mut bank_b,
            &PortId::transfer(),
            &ChannelId::with_index(1),
            &data,
        )
        .unwrap();
        assert_eq!(bank_b.get("bob", "transfer/channel-1/uatom"), 0);
        let p = packet(&data, 1, 0);
        refund(&mut bank_b, &p).unwrap();
        assert_eq!(bank_b.get("bob", "transfer/channel-1/uatom"), 50);
    }

    #[test]
    fn escrow_addresses_are_channel_specific() {
        let a = escrow_address(&PortId::transfer(), &ChannelId::with_index(0));
        let b = escrow_address(&PortId::transfer(), &ChannelId::with_index(1));
        assert_ne!(a, b);
        assert!(a.starts_with("escrow-"));
    }
}
