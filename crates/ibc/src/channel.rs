//! ICS-04 channel semantics: channel ends, ordering and handshake states.

use serde::{Deserialize, Serialize};

use crate::ids::{ChannelId, ConnectionId, PortId, Sequence};

/// The delivery ordering guarantee of a channel.
///
/// The paper's experiments use an *unordered* channel between the two Gaia
/// chains, which is also the common production configuration for ICS-20.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Order {
    /// Packets may be delivered in any order; receipts track delivery.
    Unordered,
    /// Packets must be delivered in the exact order they were sent.
    Ordered,
}

/// The lifecycle state of a channel end.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChannelState {
    /// `ChanOpenInit` executed on this chain.
    Init,
    /// `ChanOpenTry` executed on this chain.
    TryOpen,
    /// Handshake complete; packets may flow.
    Open,
    /// The channel is closed; no further packets may be sent.
    Closed,
}

/// The counterparty of a channel end.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelCounterparty {
    /// Port on the counterparty chain.
    pub port_id: PortId,
    /// Channel identifier on the counterparty chain, once known.
    pub channel_id: Option<ChannelId>,
}

/// One end of an IBC channel.
///
/// # Example
///
/// ```rust
/// use xcc_ibc::channel::{ChannelCounterparty, ChannelEnd, ChannelState, Order};
/// use xcc_ibc::ids::{ConnectionId, PortId};
///
/// let end = ChannelEnd::new(
///     ChannelState::Open,
///     Order::Unordered,
///     ChannelCounterparty { port_id: PortId::transfer(), channel_id: None },
///     ConnectionId::with_index(0),
/// );
/// assert!(end.is_open());
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChannelEnd {
    /// Current handshake state.
    pub state: ChannelState,
    /// Delivery ordering guarantee.
    pub ordering: Order,
    /// Counterparty port/channel.
    pub counterparty: ChannelCounterparty,
    /// The connection this channel runs over.
    pub connection_id: ConnectionId,
    /// Application version string (ICS-20 uses `ics20-1`).
    pub version: String,
    /// Next sequence number to assign to an outgoing packet.
    pub next_sequence_send: Sequence,
    /// Next sequence expected on an ordered channel's receive path.
    pub next_sequence_recv: Sequence,
    /// Next sequence expected on an ordered channel's acknowledgement path.
    pub next_sequence_ack: Sequence,
}

impl ChannelEnd {
    /// Creates a channel end with sequences initialised to 1.
    pub fn new(
        state: ChannelState,
        ordering: Order,
        counterparty: ChannelCounterparty,
        connection_id: ConnectionId,
    ) -> Self {
        ChannelEnd {
            state,
            ordering,
            counterparty,
            connection_id,
            version: "ics20-1".to_string(),
            next_sequence_send: Sequence::FIRST,
            next_sequence_recv: Sequence::FIRST,
            next_sequence_ack: Sequence::FIRST,
        }
    }

    /// `true` once the handshake has completed on this end.
    pub fn is_open(&self) -> bool {
        self.state == ChannelState::Open
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_channel_end_defaults() {
        let end = ChannelEnd::new(
            ChannelState::Init,
            Order::Unordered,
            ChannelCounterparty {
                port_id: PortId::transfer(),
                channel_id: None,
            },
            ConnectionId::with_index(0),
        );
        assert!(!end.is_open());
        assert_eq!(end.next_sequence_send, Sequence::FIRST);
        assert_eq!(end.version, "ics20-1");
    }

    #[test]
    fn open_channel_reports_open() {
        let mut end = ChannelEnd::new(
            ChannelState::Init,
            Order::Ordered,
            ChannelCounterparty {
                port_id: PortId::transfer(),
                channel_id: Some(ChannelId::with_index(4)),
            },
            ConnectionId::with_index(1),
        );
        end.state = ChannelState::Open;
        assert!(end.is_open());
        assert_eq!(end.ordering, Order::Ordered);
    }
}
