//! Errors produced by IBC handlers.

use crate::height::Height;
use crate::ids::{ChannelId, ClientId, ConnectionId, PortId, Sequence};

/// Errors raised by the IBC core and application handlers.
#[derive(Debug, Clone, PartialEq)]
pub enum IbcError {
    /// A referenced client does not exist.
    ClientNotFound {
        /// The missing client.
        client_id: ClientId,
    },
    /// A referenced connection does not exist.
    ConnectionNotFound {
        /// The missing connection.
        connection_id: ConnectionId,
    },
    /// A referenced channel does not exist.
    ChannelNotFound {
        /// Port of the missing channel.
        port_id: PortId,
        /// The missing channel.
        channel_id: ChannelId,
    },
    /// The channel (or connection) is not in the state the handler requires.
    InvalidState {
        /// Description of the expected versus actual state.
        reason: String,
    },
    /// The light client rejected a header update.
    ClientUpdateFailed {
        /// Underlying verification failure.
        reason: String,
    },
    /// The light client's trust period has lapsed: updates and proof
    /// verification are permanently rejected until out-of-band recovery
    /// (governance-style client substitution, which the simulation does not
    /// model). Injected by the `ClientExpiry` fault event.
    ClientExpired {
        /// The expired client.
        client_id: ClientId,
    },
    /// The client has no consensus state at the height a proof refers to.
    ConsensusStateNotFound {
        /// The client queried.
        client_id: ClientId,
        /// The missing height.
        height: Height,
    },
    /// A proof failed verification.
    InvalidProof {
        /// What the proof was supposed to demonstrate.
        context: String,
    },
    /// The packet has already been relayed; re-delivery is redundant.
    ///
    /// Hermes reports this as "packet messages are redundant" — the error the
    /// paper observes thousands of times when two uncoordinated relayers
    /// serve the same channel (§IV-A).
    PacketAlreadyReceived {
        /// Sequence of the redundant packet.
        sequence: Sequence,
    },
    /// The acknowledgement has already been processed on the sending chain.
    PacketAlreadyAcknowledged {
        /// Sequence of the redundant acknowledgement.
        sequence: Sequence,
    },
    /// No commitment exists for the packet being acknowledged or timed out.
    PacketCommitmentNotFound {
        /// Sequence of the unknown packet.
        sequence: Sequence,
    },
    /// The commitment stored on-chain does not match the packet supplied.
    PacketCommitmentMismatch {
        /// Sequence of the mismatched packet.
        sequence: Sequence,
    },
    /// The packet has timed out and can no longer be received.
    PacketTimedOut {
        /// Sequence of the expired packet.
        sequence: Sequence,
        /// The timeout height carried by the packet.
        timeout_height: Height,
    },
    /// Timeout was claimed for a packet that has not actually timed out.
    TimeoutNotReached {
        /// Sequence of the packet.
        sequence: Sequence,
    },
    /// An ICS-20 application error (bad denomination, insufficient funds…).
    Transfer {
        /// Description of the failure.
        reason: String,
    },
}

impl std::fmt::Display for IbcError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            IbcError::ClientNotFound { client_id } => write!(f, "client {client_id} not found"),
            IbcError::ConnectionNotFound { connection_id } => {
                write!(f, "connection {connection_id} not found")
            }
            IbcError::ChannelNotFound {
                port_id,
                channel_id,
            } => {
                write!(f, "channel {port_id}/{channel_id} not found")
            }
            IbcError::InvalidState { reason } => write!(f, "invalid state: {reason}"),
            IbcError::ClientUpdateFailed { reason } => write!(f, "client update failed: {reason}"),
            IbcError::ClientExpired { client_id } => {
                write!(f, "client {client_id} expired: trust period lapsed")
            }
            IbcError::ConsensusStateNotFound { client_id, height } => {
                write!(
                    f,
                    "no consensus state for client {client_id} at height {height}"
                )
            }
            IbcError::InvalidProof { context } => write!(f, "invalid proof: {context}"),
            IbcError::PacketAlreadyReceived { sequence } => {
                write!(
                    f,
                    "packet messages are redundant: sequence {sequence} already received"
                )
            }
            IbcError::PacketAlreadyAcknowledged { sequence } => {
                write!(
                    f,
                    "packet messages are redundant: sequence {sequence} already acknowledged"
                )
            }
            IbcError::PacketCommitmentNotFound { sequence } => {
                write!(f, "packet commitment not found for sequence {sequence}")
            }
            IbcError::PacketCommitmentMismatch { sequence } => {
                write!(f, "packet commitment mismatch for sequence {sequence}")
            }
            IbcError::PacketTimedOut {
                sequence,
                timeout_height,
            } => {
                write!(f, "packet {sequence} timed out at height {timeout_height}")
            }
            IbcError::TimeoutNotReached { sequence } => {
                write!(f, "packet {sequence} has not timed out yet")
            }
            IbcError::Transfer { reason } => write!(f, "transfer failed: {reason}"),
        }
    }
}

impl std::error::Error for IbcError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn redundant_packet_error_uses_hermes_wording() {
        let err = IbcError::PacketAlreadyReceived {
            sequence: Sequence::from(5),
        };
        assert!(err.to_string().contains("packet messages are redundant"));
    }

    #[test]
    fn display_covers_key_variants() {
        let errors = [
            IbcError::ClientNotFound {
                client_id: ClientId::with_index(0),
            }
            .to_string(),
            IbcError::ChannelNotFound {
                port_id: PortId::transfer(),
                channel_id: ChannelId::with_index(2),
            }
            .to_string(),
            IbcError::PacketTimedOut {
                sequence: Sequence::from(9),
                timeout_height: Height::at(100),
            }
            .to_string(),
            IbcError::Transfer {
                reason: "insufficient funds".into(),
            }
            .to_string(),
        ];
        assert!(errors[0].contains("07-tendermint-0"));
        assert!(errors[1].contains("transfer/channel-2"));
        assert!(errors[2].contains("timed out"));
        assert!(errors[3].contains("insufficient funds"));
    }

    #[test]
    fn expired_client_error_names_the_client_and_cause() {
        let err = IbcError::ClientExpired {
            client_id: ClientId::with_index(1),
        };
        let text = err.to_string();
        assert!(text.contains("07-tendermint-1"));
        assert!(text.contains("trust period lapsed"));
    }
}
