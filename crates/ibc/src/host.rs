//! ICS-24 host path construction.
//!
//! Every provable IBC state item lives at a well-known path in the host's
//! commitment store. The constructors here are used both by the writing side
//! (the IBC module) and by the verifying side (the counterparty checking a
//! proof), so the two can never disagree on a key.

use crate::height::Height;
use crate::ids::{ChannelId, ClientId, ConnectionId, PortId, Sequence};

/// Path of a client's client state.
pub fn client_state_path(client_id: &ClientId) -> String {
    format!("clients/{client_id}/clientState")
}

/// Path of a client's consensus state at a height.
pub fn consensus_state_path(client_id: &ClientId, height: Height) -> String {
    format!("clients/{client_id}/consensusStates/{height}")
}

/// Path of a connection end.
pub fn connection_path(connection_id: &ConnectionId) -> String {
    format!("connections/{connection_id}")
}

/// Path of a channel end.
pub fn channel_path(port_id: &PortId, channel_id: &ChannelId) -> String {
    format!("channelEnds/ports/{port_id}/channels/{channel_id}")
}

/// Path of a packet commitment.
pub fn packet_commitment_path(
    port_id: &PortId,
    channel_id: &ChannelId,
    sequence: Sequence,
) -> String {
    format!("commitments/ports/{port_id}/channels/{channel_id}/sequences/{sequence}")
}

/// Path of a packet receipt (unordered channels).
pub fn packet_receipt_path(port_id: &PortId, channel_id: &ChannelId, sequence: Sequence) -> String {
    format!("receipts/ports/{port_id}/channels/{channel_id}/sequences/{sequence}")
}

/// Path of a packet acknowledgement commitment.
pub fn packet_acknowledgement_path(
    port_id: &PortId,
    channel_id: &ChannelId,
    sequence: Sequence,
) -> String {
    format!("acks/ports/{port_id}/channels/{channel_id}/sequences/{sequence}")
}

/// Path of the next send sequence for a channel end.
pub fn next_sequence_send_path(port_id: &PortId, channel_id: &ChannelId) -> String {
    format!("nextSequenceSend/ports/{port_id}/channels/{channel_id}")
}

/// Path of the next receive sequence for a channel end.
pub fn next_sequence_recv_path(port_id: &PortId, channel_id: &ChannelId) -> String {
    format!("nextSequenceRecv/ports/{port_id}/channels/{channel_id}")
}

/// Path of the next acknowledgement sequence for a channel end.
pub fn next_sequence_ack_path(port_id: &PortId, channel_id: &ChannelId) -> String {
    format!("nextSequenceAck/ports/{port_id}/channels/{channel_id}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paths_are_namespaced_and_distinct() {
        let port = PortId::transfer();
        let chan = ChannelId::with_index(0);
        let seq = Sequence::from(5);
        let paths = [
            client_state_path(&ClientId::with_index(0)),
            consensus_state_path(&ClientId::with_index(0), Height::at(10)),
            connection_path(&ConnectionId::with_index(0)),
            channel_path(&port, &chan),
            packet_commitment_path(&port, &chan, seq),
            packet_receipt_path(&port, &chan, seq),
            packet_acknowledgement_path(&port, &chan, seq),
            next_sequence_send_path(&port, &chan),
            next_sequence_recv_path(&port, &chan),
            next_sequence_ack_path(&port, &chan),
        ];
        let mut sorted = paths.clone();
        sorted.sort();
        assert!(
            sorted.windows(2).all(|pair| pair[0] != pair[1]),
            "store paths must be pairwise distinct: {sorted:?}"
        );
    }

    #[test]
    fn commitment_paths_follow_ics24_shape() {
        assert_eq!(
            packet_commitment_path(
                &PortId::transfer(),
                &ChannelId::with_index(0),
                Sequence::from(1)
            ),
            "commitments/ports/transfer/channels/channel-0/sequences/1"
        );
        assert_eq!(
            packet_acknowledgement_path(
                &PortId::transfer(),
                &ChannelId::with_index(3),
                Sequence::from(7)
            ),
            "acks/ports/transfer/channels/channel-3/sequences/7"
        );
    }
}
