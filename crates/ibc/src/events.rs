//! IBC ABCI events and their parsing.
//!
//! Relayers never see chain state directly: they learn about pending packets
//! by scanning the ABCI events emitted during transaction execution
//! (`send_packet`, `recv_packet`, `write_acknowledgement`, …) and then pull
//! the packet data back out of those events. The emitters and parsers here
//! are the two halves of that contract.

use crate::height::Height;
use crate::ids::{ChannelId, PortId, Sequence};
use crate::packet::{Acknowledgement, Packet};
use xcc_sim::SimTime;
use xcc_tendermint::abci::Event;

/// Event type emitted when a packet is sent.
pub const SEND_PACKET: &str = "send_packet";
/// Event type emitted when a packet is received.
pub const RECV_PACKET: &str = "recv_packet";
/// Event type emitted when an acknowledgement is written by the receiver.
pub const WRITE_ACK: &str = "write_acknowledgement";
/// Event type emitted when an acknowledgement is processed by the sender.
pub const ACK_PACKET: &str = "acknowledge_packet";
/// Event type emitted when a packet times out.
pub const TIMEOUT_PACKET: &str = "timeout_packet";

fn packet_attrs(event: Event, packet: &Packet) -> Event {
    event
        .with_attr("packet_sequence", packet.sequence.to_string())
        .with_attr("packet_src_port", packet.source_port.as_str())
        .with_attr("packet_src_channel", packet.source_channel.as_str())
        .with_attr("packet_dst_port", packet.destination_port.as_str())
        .with_attr("packet_dst_channel", packet.destination_channel.as_str())
        .with_attr("packet_timeout_height", packet.timeout_height.to_string())
        .with_attr(
            "packet_timeout_timestamp",
            packet.timeout_timestamp.as_nanos().to_string(),
        )
}

fn encode_data(data: &[u8]) -> String {
    // Hex keeps the attribute printable while staying proportional in size to
    // the real payload, which matters for the WebSocket frame accounting.
    let mut s = String::with_capacity(data.len() * 2);
    for b in data {
        s.push(char::from_digit((b >> 4) as u32, 16).expect("nibble"));
        s.push(char::from_digit((b & 0xf) as u32, 16).expect("nibble"));
    }
    s
}

fn decode_data(s: &str) -> Option<Vec<u8>> {
    if !s.len().is_multiple_of(2) {
        return None;
    }
    let mut out = Vec::with_capacity(s.len() / 2);
    let bytes = s.as_bytes();
    for pair in bytes.chunks(2) {
        let hi = (pair[0] as char).to_digit(16)?;
        let lo = (pair[1] as char).to_digit(16)?;
        out.push((hi * 16 + lo) as u8);
    }
    Some(out)
}

/// Builds the `send_packet` event for a freshly sent packet.
pub fn send_packet_event(packet: &Packet) -> Event {
    packet_attrs(Event::new(SEND_PACKET), packet)
        .with_attr("packet_data_hex", encode_data(&packet.data))
}

/// Builds the `recv_packet` event for a received packet.
pub fn recv_packet_event(packet: &Packet) -> Event {
    packet_attrs(Event::new(RECV_PACKET), packet)
        .with_attr("packet_data_hex", encode_data(&packet.data))
}

/// Builds the `write_acknowledgement` event.
pub fn write_ack_event(packet: &Packet, ack: &Acknowledgement) -> Event {
    let ack_text = match ack {
        Acknowledgement::Success { .. } => "success".to_string(),
        Acknowledgement::Error { error } => format!("error:{error}"),
    };
    packet_attrs(Event::new(WRITE_ACK), packet)
        .with_attr("packet_data_hex", encode_data(&packet.data))
        .with_attr("packet_ack", ack_text)
}

/// Builds the `acknowledge_packet` event.
pub fn ack_packet_event(packet: &Packet) -> Event {
    packet_attrs(Event::new(ACK_PACKET), packet)
}

/// Builds the `timeout_packet` event.
pub fn timeout_packet_event(packet: &Packet) -> Event {
    packet_attrs(Event::new(TIMEOUT_PACKET), packet)
}

/// Reconstructs a [`Packet`] from a packet-carrying event (`send_packet`,
/// `recv_packet`, `write_acknowledgement`, `acknowledge_packet` or
/// `timeout_packet`).
///
/// Returns `None` for events of other types or with missing attributes.
/// Acknowledge/timeout events carry no payload, so the reconstructed packet's
/// `data` is empty for those kinds. This is exactly the "message extraction"
/// step of the relayer pipeline.
pub fn packet_from_event(event: &Event) -> Option<Packet> {
    if !matches!(
        event.kind.as_str(),
        SEND_PACKET | RECV_PACKET | WRITE_ACK | ACK_PACKET | TIMEOUT_PACKET
    ) {
        return None;
    }
    let timeout = event.attr("packet_timeout_height")?;
    let (revision, height) = timeout.split_once('-')?;
    Some(Packet {
        sequence: Sequence::from(event.attr("packet_sequence")?.parse::<u64>().ok()?),
        source_port: event.attr("packet_src_port")?.parse().ok()?,
        source_channel: event.attr("packet_src_channel")?.parse().ok()?,
        destination_port: event.attr("packet_dst_port")?.parse().ok()?,
        destination_channel: event.attr("packet_dst_channel")?.parse().ok()?,
        data: decode_data(event.attr("packet_data_hex").unwrap_or(""))?,
        timeout_height: Height::new(revision.parse().ok()?, height.parse().ok()?),
        timeout_timestamp: SimTime::from_nanos(
            event.attr("packet_timeout_timestamp")?.parse().ok()?,
        ),
    })
}

/// Extracts the acknowledgement from a `write_acknowledgement` event.
pub fn ack_from_event(event: &Event) -> Option<Acknowledgement> {
    if event.kind != WRITE_ACK {
        return None;
    }
    let text = event.attr("packet_ack")?;
    if text == "success" {
        Some(Acknowledgement::success())
    } else {
        Some(Acknowledgement::error(
            text.strip_prefix("error:").unwrap_or(text),
        ))
    }
}

/// Helper for filtering a transaction's events down to the ones a relayer for
/// a given source channel cares about.
pub fn is_for_channel(event: &Event, port: &PortId, channel: &ChannelId) -> bool {
    match event.kind.as_str() {
        SEND_PACKET | ACK_PACKET | TIMEOUT_PACKET => {
            event.attr("packet_src_port") == Some(port.as_str())
                && event.attr("packet_src_channel") == Some(channel.as_str())
        }
        RECV_PACKET | WRITE_ACK => {
            event.attr("packet_dst_port") == Some(port.as_str())
                && event.attr("packet_dst_channel") == Some(channel.as_str())
        }
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_packet() -> Packet {
        Packet {
            sequence: Sequence::from(12),
            source_port: PortId::transfer(),
            source_channel: ChannelId::with_index(0),
            destination_port: PortId::transfer(),
            destination_channel: ChannelId::with_index(5),
            data: b"{\"denom\":\"uatom\",\"amount\":\"10\"}".to_vec(),
            timeout_height: Height::new(0, 500),
            timeout_timestamp: SimTime::from_secs(1_000),
        }
    }

    #[test]
    fn send_packet_event_roundtrips() {
        let packet = sample_packet();
        let event = send_packet_event(&packet);
        assert_eq!(event.kind, SEND_PACKET);
        let parsed = packet_from_event(&event).unwrap();
        assert_eq!(parsed, packet);
    }

    #[test]
    fn write_ack_event_roundtrips_packet_and_ack() {
        let packet = sample_packet();
        let event = write_ack_event(&packet, &Acknowledgement::success());
        assert_eq!(packet_from_event(&event).unwrap(), packet);
        assert!(ack_from_event(&event).unwrap().is_success());

        let err_event = write_ack_event(&packet, &Acknowledgement::error("denied"));
        match ack_from_event(&err_event).unwrap() {
            Acknowledgement::Error { error } => assert_eq!(error, "denied"),
            _ => panic!("expected error ack"),
        }
    }

    #[test]
    fn non_packet_events_do_not_parse() {
        let event = Event::new("transfer").with_attr("amount", "10uatom");
        assert!(packet_from_event(&event).is_none());
        assert!(ack_from_event(&event).is_none());
    }

    #[test]
    fn ack_packet_event_has_no_data_attribute() {
        let packet = sample_packet();
        let event = ack_packet_event(&packet);
        assert_eq!(event.kind, ACK_PACKET);
        assert!(event.attr("packet_data_hex").is_none());
        assert_eq!(event.attr("packet_sequence"), Some("12"));
    }

    #[test]
    fn channel_filtering_uses_source_or_destination_as_appropriate() {
        let packet = sample_packet();
        let send = send_packet_event(&packet);
        let recv = recv_packet_event(&packet);
        let src_chan = ChannelId::with_index(0);
        let dst_chan = ChannelId::with_index(5);
        assert!(is_for_channel(&send, &PortId::transfer(), &src_chan));
        assert!(!is_for_channel(&send, &PortId::transfer(), &dst_chan));
        assert!(is_for_channel(&recv, &PortId::transfer(), &dst_chan));
        assert!(!is_for_channel(&recv, &PortId::transfer(), &src_chan));
    }

    #[test]
    fn hex_data_encoding_roundtrips_arbitrary_bytes() {
        let data: Vec<u8> = (0..=255u8).collect();
        assert_eq!(decode_data(&encode_data(&data)).unwrap(), data);
        assert!(decode_data("abc").is_none());
        assert!(decode_data("zz").is_none());
    }
}
