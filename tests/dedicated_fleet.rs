//! Acceptance tests for the dedicated relayer fleet and the event-driven
//! runner.
//!
//! * **The scaling claim**: the `dedicated_scaling` golden fixture pins one
//!   shared relayer process capped flat across 4 channels vs a dedicated
//!   fleet of one process per channel delivering ≥2× the throughput at the
//!   same configuration.
//! * **Fleet determinism**: `dedicated_scaling`-shaped sweeps produce
//!   bit-identical outcomes run twice, on a multi-threaded worker pool, and
//!   under `XCC_SWEEP_THREADS>1`.
//! * **Baseline regression**: `ChannelPolicy::Dedicated` with a single
//!   channel deploys exactly the single-relayer baseline.
//! * **Per-process lanes**: a dedicated fleet really is one simulated
//!   process per channel, each with its own RPC lane pair.

use ibc_perf_repro::framework::scenarios;
use ibc_perf_repro::framework::spec::ExperimentSpec;
use ibc_perf_repro::framework::sweep::{run_parallel, run_sequential, SweepGrid};
use ibc_perf_repro::framework::ScenarioOutcome;
use ibc_perf_repro::relayer::strategy::ChannelPolicy;

const DEDICATED_SCALING_GOLDENS: &str = include_str!("fixtures/dedicated_scaling_goldens.json");

/// The acceptance bar of the fleet refactor: at 4 channels and one
/// `relayer_count` of capacity, the dedicated per-channel fleet must deliver
/// at least twice the shared process's throughput — and both arms must
/// replay their pinned outcomes bit for bit.
#[test]
fn dedicated_scaling_fixture_replays_and_breaks_the_shared_cap() {
    let goldens: Vec<ScenarioOutcome> =
        serde_json::from_str(DEDICATED_SCALING_GOLDENS).expect("golden fixture parses");
    assert_eq!(goldens.len(), 2, "one shared + one dedicated golden");

    let mut shared_tfps = None;
    let mut dedicated_tfps = None;
    for golden in goldens {
        assert_eq!(golden.spec.deployment.channel_count, 4);
        assert_eq!(golden.spec.deployment.relayer_count, 1);
        let rerun = scenarios::run(&golden.spec);
        assert_eq!(
            rerun.metrics, golden.metrics,
            "{} diverged from its golden outcome",
            golden.spec.name
        );
        match golden.spec.deployment.relayer_strategy.channel_policy {
            ChannelPolicy::Dedicated => dedicated_tfps = Some(golden.throughput_tfps()),
            _ => shared_tfps = Some(golden.throughput_tfps()),
        }
    }
    let shared = shared_tfps.expect("fixture carries the shared-process arm");
    let dedicated = dedicated_tfps.expect("fixture carries the dedicated arm");
    assert!(shared > 0.0, "the shared arm completes transfers");
    assert!(
        dedicated >= 2.0 * shared,
        "a dedicated process per channel must at least double the shared \
         process's throughput at 4 channels ({dedicated:.1} vs {shared:.1} TFPS)"
    );
}

fn small_dedicated_scaling_grid() -> SweepGrid {
    SweepGrid::new(
        ExperimentSpec::relayer_throughput()
            .named("dedicated_scaling")
            .relayers(1)
            .rtt_ms(0)
            .input_rate(40)
            .measurement_blocks(4)
            .seed(42),
    )
    .channel_counts([2])
    .channel_policies([ChannelPolicy::FairShare, ChannelPolicy::Dedicated])
}

/// Running the `dedicated_scaling` sweep twice — and once on a parallel
/// worker pool, and once with `XCC_SWEEP_THREADS` forcing more than one
/// worker — produces bit-identical `ScenarioOutcome`s: fleet expansion,
/// per-process wake scheduling and the RPC lane forks are all deterministic
/// in the spec alone.
#[test]
fn dedicated_scaling_is_deterministic_across_runs_and_threads() {
    let grid = small_dedicated_scaling_grid();
    let specs = grid.points();
    assert_eq!(specs.len(), 2);

    let first = run_sequential(&specs);
    let second = run_sequential(&specs);
    assert_eq!(first, second, "two sequential runs diverged");

    let parallel = run_parallel(&specs, 3);
    assert_eq!(first, parallel, "a parallel worker pool changed outcomes");

    // The environment knob the bench binaries use takes the same path.
    std::env::set_var("XCC_SWEEP_THREADS", "3");
    let from_env = grid.run();
    std::env::remove_var("XCC_SWEEP_THREADS");
    assert_eq!(first, from_env, "XCC_SWEEP_THREADS>1 changed outcomes");
}

/// `Dedicated` with `channel_count == 1` expands to exactly one process
/// pinned to channel 0 — the single-relayer baseline by construction, so
/// every metric matches the default-policy run bit for bit.
#[test]
fn dedicated_with_one_channel_equals_the_single_relayer_baseline() {
    let base = ExperimentSpec::relayer_throughput()
        .relayers(1)
        .channels(1)
        .rtt_ms(0)
        .input_rate(30)
        .measurement_blocks(4)
        .seed(11);
    let baseline = scenarios::run(&base.clone());
    let dedicated = scenarios::run(&base.channel_policy(ChannelPolicy::Dedicated));
    assert_eq!(
        baseline.metrics, dedicated.metrics,
        "a single-channel dedicated fleet must equal the baseline schedule"
    );
}

/// A dedicated fleet is real processes: one per channel (times
/// `relayer_count` replicas), each with its own RPC lane pair that actually
/// served queries.
#[test]
fn dedicated_fleet_builds_one_process_per_channel_with_own_lanes() {
    let spec = ExperimentSpec::relayer_throughput()
        .relayers(1)
        .channels(3)
        .rtt_ms(0)
        .input_rate(30)
        .measurement_blocks(3)
        .seed(5)
        .channel_policy(ChannelPolicy::Dedicated);
    let run = scenarios::run_raw(&spec);
    assert_eq!(run.relayer_stats.len(), 3, "one process per channel");
    assert_eq!(run.rpc_lanes.len(), 3, "one lane pair per process");
    for (process, (src_lane, dst_lane)) in run.rpc_lanes.iter().enumerate() {
        assert!(
            src_lane.queries_served > 0,
            "process {process} never used its source lane"
        );
        assert!(
            dst_lane.queries_served > 0,
            "process {process} never used its destination lane"
        );
    }
    // Every process did receive-path work for its own channel.
    for (process, stats) in run.relayer_stats.iter().enumerate() {
        assert!(
            stats.recv_txs_submitted > 0,
            "process {process} relayed nothing on its channel"
        );
    }

    // Redundancy composes: two replicas per channel double the fleet.
    let redundant = scenarios::run_raw(&spec.relayers(2));
    assert_eq!(redundant.relayer_stats.len(), 6, "3 channels × 2 replicas");
    assert_eq!(redundant.rpc_lanes.len(), 6);
}
