//! Property test pinning the scheduler-backend equivalence the runner's
//! backend choice relies on: for any interleaving of schedules and pops —
//! including schedules issued *during* a pop drain at the current instant,
//! the case the `(time, seq)` FIFO contract exists for — the hierarchical
//! timing wheel delivers exactly the same `(time, payload)` sequence as the
//! binary heap.

use proptest::prelude::*;

use ibc_perf_repro::sim::{Scheduler, SchedulerBackend, SimDuration, SimTime};

/// One generated step: schedule an event `offset_us` after the current
/// clock, then pop up to `pops` events; while draining, `reschedule` plants
/// a fresh event at the just-popped instant (schedule-during-pop).
type Step = (u64, u8, bool);

fn run(backend: SchedulerBackend, steps: &[Step]) -> Vec<(SimTime, u32)> {
    let mut sched: Scheduler<u32> = Scheduler::with_backend(backend);
    let mut next_id = 0u32;
    let mut out = Vec::new();
    for &(offset_us, pops, reschedule) in steps {
        sched.schedule_at(sched.now() + SimDuration::from_micros(offset_us), next_id);
        next_id += 1;
        for _ in 0..pops % 4 {
            let Some((t, id)) = sched.pop() else { break };
            out.push((t, id));
            if reschedule {
                // The FIFO case: an event scheduled at the instant being
                // drained must come out after everything already queued at
                // that instant, in insertion order.
                sched.schedule_at(t, next_id);
                next_id += 1;
            }
        }
    }
    while let Some(ev) = sched.pop() {
        out.push(ev);
    }
    out
}

proptest! {
    /// Any schedule/pop interleaving pops identically from both backends.
    #[test]
    fn wheel_and_heap_pop_identical_sequences(
        steps in prop::collection::vec((0u64..5_000_000, any::<u8>(), any::<bool>()), 1..80)
    ) {
        let heap = run(SchedulerBackend::Heap, &steps);
        let wheel = run(SchedulerBackend::Wheel, &steps);
        prop_assert_eq!(heap, wheel);
    }

    /// Same-instant bursts: every event lands on one of a handful of
    /// instants, so FIFO tie-breaking decides nearly every pop.
    #[test]
    fn same_instant_bursts_preserve_fifo_order_on_both_backends(
        steps in prop::collection::vec((0u64..4, any::<u8>(), any::<bool>()), 1..60)
    ) {
        let heap = run(SchedulerBackend::Heap, &steps);
        let wheel = run(SchedulerBackend::Wheel, &steps);
        prop_assert_eq!(heap.clone(), wheel);
        // Events at one instant must come out in insertion (id) order.
        for window in heap.windows(2) {
            if window[0].0 == window[1].0 {
                prop_assert!(window[0].1 < window[1].1, "FIFO violated: {:?}", window);
            }
        }
    }
}
