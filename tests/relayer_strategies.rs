//! Acceptance tests for the pluggable relayer pipeline.
//!
//! * **Determinism**: the default `RelayerStrategy` must reproduce the
//!   pre-refactor monolithic relayer's fig8/fig9/fig11/fig12 outcomes bit
//!   for bit (golden fixtures captured before the refactor; regenerate with
//!   `cargo run --release -p xcc-bench --bin goldens`).
//! * **Accounting invariants**: in two-relayer runs, every receive message
//!   committed to the destination chain is either the packet's unique
//!   successful delivery or an on-chain redundant failure, and the
//!   pre-broadcast skips reported by `RelayerStats` match the telemetry
//!   error log.
//! * **Counterfactual behaviour**: each non-default strategy moves the
//!   metric the paper says it should.

use std::collections::BTreeSet;

use ibc_perf_repro::chain::msg::Msg;
use ibc_perf_repro::chain::tx::Tx;
use ibc_perf_repro::framework::scenarios;
use ibc_perf_repro::framework::spec::ExperimentSpec;
use ibc_perf_repro::framework::ScenarioOutcome;
use ibc_perf_repro::relayer::strategy::{RelayerStrategy, SequenceTracking};
use ibc_perf_repro::relayer::telemetry::TransferStep;

const GOLDENS: &str = include_str!("fixtures/default_strategy_goldens.json");
const SEQUENCE_RACE_GOLDENS: &str = include_str!("fixtures/sequence_race_goldens.json");

#[test]
fn default_strategy_reproduces_pre_refactor_goldens() {
    let goldens: Vec<ScenarioOutcome> =
        serde_json::from_str(GOLDENS).expect("golden fixture parses");
    assert_eq!(goldens.len(), 5, "one golden per pinned figure point");
    for golden in goldens {
        assert_eq!(
            golden.spec.deployment.relayer_strategy,
            RelayerStrategy::default(),
            "goldens pin the default strategy"
        );
        let rerun = scenarios::run(&golden.spec);
        assert_eq!(
            rerun.metrics, golden.metrics,
            "{} diverged from its pre-refactor outcome",
            golden.spec.name
        );
    }
}

fn two_relayer_spec() -> ExperimentSpec {
    ExperimentSpec::relayer_throughput()
        .input_rate(40)
        .relayers(2)
        .rtt_ms(200)
        .measurement_blocks(6)
        .seed(3)
}

#[test]
fn redundant_message_accounting_sums_to_the_packet_totals() {
    let run = scenarios::run_raw(&two_relayer_spec());

    // Count every MsgRecvPacket committed to the destination chain, split by
    // execution outcome.
    let mut successful_recv_msgs = 0u64;
    let mut redundant_failed_msgs = 0u64;
    let mut redundant_failed_txs = 0u64;
    let mut other_failed_msgs = 0u64;
    {
        let chain = run.chain_b.borrow();
        for height in 1..=chain.height() {
            let block = chain.block_at(height).unwrap();
            for (raw, result) in block.block.data.txs.iter().zip(&block.results) {
                let tx = Tx::decode(raw).expect("committed txs decode");
                let recv_msgs = tx
                    .msgs
                    .iter()
                    .filter(|m| matches!(m, Msg::IbcRecvPacket { .. }))
                    .count() as u64;
                if recv_msgs == 0 {
                    continue;
                }
                if result.is_ok() {
                    successful_recv_msgs += recv_msgs;
                } else if result.log.contains("redundant") {
                    redundant_failed_msgs += recv_msgs;
                    redundant_failed_txs += 1;
                } else {
                    // Sequence races between the two instances' retries can
                    // fail a committed transaction too; those packets are
                    // re-relayed later, they are just not redundancy.
                    other_failed_msgs += recv_msgs;
                }
            }
        }
    }

    // Unique deliveries: each packet is received at most once on chain.
    let chain_a = run.chain_a.borrow();
    let sent = chain_a
        .app()
        .ibc()
        .sent_sequences(&run.path.port, &run.path.src_channel);
    let received_on_b = {
        let chain_b = run.chain_b.borrow();
        let unreceived: BTreeSet<_> = chain_b
            .app()
            .ibc()
            .unreceived_packets(&run.path.port, &run.path.dst_channel, &sent)
            .into_iter()
            .collect();
        sent.iter().filter(|s| !unreceived.contains(s)).count() as u64
    };
    assert!(received_on_b > 0, "the run must relay something");
    assert_eq!(
        successful_recv_msgs, received_on_b,
        "every successful recv message delivers exactly one new packet"
    );
    assert!(
        redundant_failed_msgs > 0,
        "two uncoordinated relayers must collide on chain"
    );

    // Pre-broadcast skips: the stats counters match the telemetry error log.
    let skipped: u64 = run
        .relayer_stats
        .iter()
        .map(|s| s.packets_skipped_already_relayed)
        .sum();
    let skip_errors: u64 = run
        .telemetry
        .errors()
        .iter()
        .filter(|e| e.message.contains("redundant"))
        .map(|e| {
            e.message
                .split_whitespace()
                .nth(1)
                .and_then(|n| n.parse::<u64>().ok())
                .expect("skip messages carry a count")
        })
        .sum();
    assert_eq!(skipped, skip_errors, "stats and telemetry must agree");

    // No coordination policy: nothing is deliberately left to peers, and
    // every committed recv message is accounted for: the unique delivery,
    // an on-chain redundant collision, or a sequence race being retried.
    assert!(run
        .relayer_stats
        .iter()
        .all(|s| s.packets_left_to_peers == 0));
    let committed_recv_msgs = successful_recv_msgs + redundant_failed_msgs + other_failed_msgs;
    assert_eq!(
        committed_recv_msgs + skipped,
        2 * received_on_b + other_failed_msgs,
        "both instances attempt every delivered packet exactly once: \
         one success, one collision or pre-broadcast skip"
    );

    // The outcome metric the figures report equals the independently
    // counted redundancy signals.
    let outcome = scenarios::outcome_from(&two_relayer_spec(), &run);
    assert_eq!(
        outcome.redundant_packet_errors(),
        skipped + redundant_failed_txs,
        "redundant_packet_errors = pre-broadcast skips + failed redundant txs"
    );

    // Telemetry sees exactly the unique deliveries.
    assert_eq!(
        run.telemetry.count_for_step(TransferStep::RecvConfirmation) as u64,
        received_on_b
    );
}

/// The mempool-aware fix replays its own golden fixture bit for bit — the
/// counterpart of the default-strategy goldens, captured with the knob on
/// (regenerate with `goldens --sequence-race`, verify with `goldens
/// --check`).
#[test]
fn sequence_race_outcomes_replay_their_goldens() {
    let goldens: Vec<ScenarioOutcome> =
        serde_json::from_str(SEQUENCE_RACE_GOLDENS).expect("sequence-race fixture parses");
    assert_eq!(goldens.len(), 2, "one golden per sequence-tracking arm");
    for golden in goldens {
        assert!(golden.spec.deployment.report_broadcast_failures);
        let rerun = scenarios::run(&golden.spec);
        assert_eq!(
            rerun.metrics, golden.metrics,
            "{} diverged from its pinned outcome",
            golden.spec.name
        );
    }
}

/// A spec whose relayer flushes deterministically straddle destination
/// commits (seeded, so the race reproduces bit for bit): the §V
/// account-sequence race's permanent repro.
fn sequence_race_spec() -> ExperimentSpec {
    ExperimentSpec::relayer_throughput()
        .input_rate(40)
        .relayers(1)
        .rtt_ms(0)
        .measurement_blocks(6)
        .seed(42)
}

/// Counts the transactions committed to the destination chain that failed
/// on-chain for a non-redundancy reason — the burned submission windows the
/// §V race leaves behind (a duplicate-sequence retry, or the receive batch
/// whose client update was lost to one).
fn burned_windows(run: &ibc_perf_repro::framework::runner::RunOutput) -> u64 {
    let chain = run.chain_b.borrow();
    let mut burned = 0u64;
    for height in 1..=chain.height() {
        let block = chain.block_at(height).unwrap();
        for result in &block.results {
            if !result.is_ok() && !result.log.contains("redundant") {
                burned += 1;
            }
        }
    }
    burned
}

/// The §V straddled-commit race, pinned as a counterfactual pair: the
/// default `Resync` tracking loses submission windows to duplicate
/// sequences, and `MempoolAware` tracking makes both the broadcast failures
/// and the burned windows vanish without losing throughput.
#[test]
fn straddled_commits_lose_windows_under_resync_and_none_under_mempool_aware() {
    let base = sequence_race_spec();

    // Under Resync, the race is visible at every level: failed broadcast
    // attempts, transactions burned on chain, and a sequence-mismatch error
    // in the telemetry log.
    let resync = scenarios::run_raw(&base.clone());
    let resync_failures: u64 = resync
        .relayer_stats
        .iter()
        .map(|s| s.broadcast_failures)
        .sum();
    assert!(
        resync_failures > 0,
        "the repro must exhibit the sequence race"
    );
    assert!(
        burned_windows(&resync) > 0,
        "a straddled commit burns committed transactions under Resync"
    );
    assert!(resync
        .telemetry
        .errors()
        .iter()
        .any(|e| e.message.contains("account sequence mismatch")));

    // Under MempoolAware, the same workload shows neither.
    let mempool = scenarios::run_raw(
        &base
            .clone()
            .sequence_tracking(SequenceTracking::MempoolAware),
    );
    let mempool_failures: u64 = mempool
        .relayer_stats
        .iter()
        .map(|s| s.broadcast_failures)
        .sum();
    assert_eq!(
        mempool_failures, 0,
        "mempool-aware tracking never burns a broadcast on the race"
    );
    assert_eq!(
        burned_windows(&mempool),
        0,
        "no committed transaction fails once straddles hold the batch"
    );
    assert!(mempool
        .telemetry
        .errors()
        .iter()
        .all(|e| !e.message.contains("account sequence mismatch")));

    // Holding a straddled batch delays it one block; it must never cost
    // completed transfers.
    let resync_outcome = scenarios::outcome_from(&base.clone(), &resync);
    let mempool_outcome = scenarios::outcome_from(
        &base.sequence_tracking(SequenceTracking::MempoolAware),
        &mempool,
    );
    assert!(
        mempool_outcome.completed() >= resync_outcome.completed(),
        "mempool-aware completed {} vs resync {}",
        mempool_outcome.completed(),
        resync_outcome.completed()
    );
    // The race's cost is visible in the outcome metrics only when asked for
    // (both arms of the comparison report it; plain runs stay pristine).
    assert_eq!(
        mempool_outcome.broadcast_failures(),
        0,
        "the metric agrees with the stats"
    );
    assert!(!resync_outcome.metrics.contains_key("broadcast_failures"));
}

/// Mempool-aware tracking composed with the packet-clear scan: an
/// acknowledgement held by a straddled source commit must not be picked up
/// again by the clear scan (which would enqueue a duplicate
/// `MsgAcknowledgement` and burn a transaction on-chain). No committed
/// transaction may fail on either chain, and every transfer still
/// acknowledges exactly once.
#[test]
fn held_acknowledgements_are_not_duplicated_by_the_clear_scan() {
    let run = scenarios::run_raw(
        &sequence_race_spec()
            .packet_clearing(2)
            .sequence_tracking(SequenceTracking::MempoolAware),
    );
    let failures: u64 = run.relayer_stats.iter().map(|s| s.broadcast_failures).sum();
    assert_eq!(failures, 0);
    for chain in [&run.chain_a, &run.chain_b] {
        let chain = chain.borrow();
        for height in 1..=chain.height() {
            let block = chain.block_at(height).unwrap();
            for result in &block.results {
                assert!(
                    result.is_ok(),
                    "committed tx failed at height {height}: {}",
                    result.log
                );
            }
        }
    }
    // Exactly-once acknowledgement per transfer the run completed.
    let acked = run.telemetry.count_for_step(TransferStep::AckConfirmation);
    assert!(acked > 0);
}

#[test]
fn coordinated_relayers_eliminate_redundant_work() {
    let base = two_relayer_spec();
    let default = scenarios::run(&base.clone());
    let coordinated = scenarios::run(&base.clone().strategy(RelayerStrategy::coordinated()));
    let leased = scenarios::run(&base.strategy(RelayerStrategy::leader_lease(2)));

    assert!(default.redundant_packet_errors() > 0);
    assert_eq!(coordinated.redundant_packet_errors(), 0);
    assert_eq!(leased.redundant_packet_errors(), 0);
    assert!(
        coordinated.throughput_tfps() >= default.throughput_tfps(),
        "partitioning must not lose throughput (coordinated {:.1} vs default {:.1})",
        coordinated.throughput_tfps(),
        default.throughput_tfps()
    );
    // Conservation holds under every coordination mode.
    for outcome in [&default, &coordinated, &leased] {
        assert_eq!(
            outcome.completed() + outcome.partial() + outcome.initiated() + outcome.not_committed(),
            outcome.requests_made()
        );
    }
}

#[test]
fn batched_and_parallel_fetchers_beat_sequential_pulls() {
    let base = ExperimentSpec::relayer_throughput()
        .input_rate(60)
        .relayers(1)
        .rtt_ms(200)
        .measurement_blocks(6)
        .seed(42);
    let sequential = scenarios::run(&base.clone());
    let batched = scenarios::run(&base.clone().strategy(RelayerStrategy::batched_pulls()));
    assert!(
        batched.completed() > sequential.completed(),
        "batched pulls must complete more transfers (batched {} vs sequential {})",
        batched.completed(),
        sequential.completed()
    );

    // Large enough that overlapping the round trips crosses a block
    // boundary — completion latency is quantized to block commits, so small
    // savings inside one block round are invisible.
    let latency_base = ExperimentSpec::latency()
        .transfers(600)
        .submission_blocks(1)
        .rtt_ms(200)
        .seed(42);
    let sequential_latency = scenarios::run(&latency_base.clone());
    let parallel_latency =
        scenarios::run(&latency_base.strategy(RelayerStrategy::parallel_fetch()));
    assert!(
        parallel_latency.completion_latency_secs() < sequential_latency.completion_latency_secs(),
        "overlapping the pulls must cut completion latency ({:.1}s vs {:.1}s)",
        parallel_latency.completion_latency_secs(),
        sequential_latency.completion_latency_secs()
    );
}

#[test]
fn windowed_and_adaptive_submission_still_complete_every_transfer() {
    let base = ExperimentSpec::latency()
        .transfers(250)
        .submission_blocks(1)
        .rtt_ms(0)
        .user_accounts(4)
        .seed(42);
    for strategy in [
        RelayerStrategy {
            submission: ibc_perf_repro::relayer::strategy::SubmissionMode::Windowed { blocks: 2 },
            ..RelayerStrategy::default()
        },
        RelayerStrategy::adaptive_submission(3),
    ] {
        let run = scenarios::run_raw(&base.clone().strategy(strategy));
        assert_eq!(
            run.telemetry.count_for_step(TransferStep::AckConfirmation),
            250,
            "strategy {} stranded transfers",
            strategy.label()
        );
    }
}

#[test]
fn polling_event_source_completes_without_websocket_frames() {
    let base = ExperimentSpec::latency()
        .transfers(200)
        .submission_blocks(1)
        .rtt_ms(0)
        .user_accounts(4)
        .seed(42);
    let polling = scenarios::run_raw(&base.strategy(RelayerStrategy::polling_events()));
    assert_eq!(
        polling
            .telemetry
            .count_for_step(TransferStep::AckConfirmation),
        200
    );
    assert!(polling
        .relayer_stats
        .iter()
        .all(|s| s.event_collection_failures == 0));
}

#[test]
fn strategies_sweep_like_any_other_axis() {
    use ibc_perf_repro::framework::sweep::SweepGrid;

    let grid = SweepGrid::new(
        ExperimentSpec::relayer_throughput()
            .input_rate(20)
            .rtt_ms(0)
            .measurement_blocks(3)
            .seed(1),
    )
    .strategies([RelayerStrategy::default(), RelayerStrategy::batched_pulls()]);
    let points = grid.points();
    assert_eq!(points.len(), 2);
    assert!(points[0].name.ends_with("/strategy=default"));
    assert!(points[1].name.ends_with("/strategy=batched"));
    // Strategy-swept specs stay JSON-round-trippable.
    for point in &points {
        let back = ExperimentSpec::from_json(&point.to_json()).unwrap();
        assert_eq!(&back, point);
    }
    let outcomes = grid.run();
    assert_eq!(outcomes.len(), 2);
    assert!(outcomes.iter().all(|o| o.completed() > 0));
}
