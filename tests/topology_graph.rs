//! Topology-graph tests: the two-chain degeneracy of the N-chain testnet and
//! the conservation laws of multi-hop forwarding.
//!
//! Two pillars, matching the guarantees the topology refactor makes:
//!
//! * **Two-chain degeneracy**: an explicit `Topology::line(2)` — two chains,
//!   one edge — is the legacy chain pair spelled as a graph. Every outcome
//!   metric must be bit-identical to the legacy pair path (the sentinel
//!   topology), whatever the seed: the graph generalisation costs nothing
//!   when the graph is the old shape.
//! * **Multi-hop conservation**: on a hub-and-spoke run driven to
//!   completion, every first-leg acknowledgement triggers exactly one
//!   second-leg transfer, no second leg is broadcast before the
//!   acknowledgement that justifies it commits, and no route completes
//!   transfers on one leg that the other leg never carried.

use proptest::prelude::*;

use ibc_perf_repro::framework::scenarios;
use ibc_perf_repro::framework::spec::ExperimentSpec;
use ibc_perf_repro::framework::{HopRoute, ScenarioOutcome, Topology};
use ibc_perf_repro::relayer::telemetry::TransferStep;

const HUB_SPOKE_GOLDENS: &str = include_str!("fixtures/hub_spoke_scaling_goldens.json");
const MESH_GOLDENS: &str = include_str!("fixtures/mesh_contention_goldens.json");

fn parse(fixture: &str) -> Vec<ScenarioOutcome> {
    serde_json::from_str(fixture).expect("golden fixture parses")
}

/// Both topology-scenario fixture sets — the hub-and-spoke multi-hop grid
/// and the full-mesh grid, each with its single-pair control arm — replay
/// bit-identically: graph setup, per-chain block streams, hop forwarding
/// and per-hop analysis are all deterministic in the spec.
#[test]
fn topology_scenario_fixtures_replay_bit_identically() {
    for (set, fixture) in [
        ("hub_spoke_scaling", HUB_SPOKE_GOLDENS),
        ("mesh_contention", MESH_GOLDENS),
    ] {
        for golden in parse(fixture) {
            let rerun = scenarios::run(&golden.spec);
            assert_eq!(
                rerun.metrics, golden.metrics,
                "{set}: {} drifted from its golden fixture",
                golden.spec.name
            );
        }
    }
}

/// A small rate-driven spec of the fig8 family, the shape most sensitive to
/// event-loop scheduling.
fn rate_spec(seed: u64) -> ExperimentSpec {
    ExperimentSpec::relayer_throughput()
        .named("topology/degeneracy/rate")
        .relayers(2)
        .rtt_ms(200)
        .input_rate(40)
        .measurement_blocks(4)
        .seed(seed)
}

/// A small fixed-batch spec of the fig12 family, driven to full completion.
fn batch_spec(seed: u64) -> ExperimentSpec {
    ExperimentSpec::latency()
        .named("topology/degeneracy/batch")
        .transfers(200)
        .submission_blocks(2)
        .rtt_ms(0)
        .seed(seed)
}

/// `Topology::line(2)` names the same chains (`ibc-0`, `ibc-1`) and the same
/// single edge as the legacy-pair sentinel, so resolving it must produce the
/// identical deployment — and the identical run, metric for metric, across
/// seeds and both workload families.
#[test]
fn line2_topology_is_bit_identical_to_the_legacy_pair() {
    for seed in [1, 7, 42] {
        for spec in [rate_spec(seed), batch_spec(seed)] {
            assert!(spec.deployment.topology.is_legacy_pair());
            let legacy = scenarios::run(&spec);
            let explicit = scenarios::run(&spec.clone().topology(Topology::line(2)));
            // The specs differ (one carries the explicit graph), so compare
            // the full metric maps rather than the whole outcome.
            assert_eq!(
                legacy.metrics, explicit.metrics,
                "line(2) diverged from the legacy pair at seed {seed} ({})",
                legacy.spec.name
            );
        }
    }
}

/// The same degeneracy through the sweep layer: a `topologies` axis point
/// carrying `line(2)` matches the bare base spec.
#[test]
fn sweep_topology_axis_preserves_the_degeneracy() {
    let base = rate_spec(42);
    let points = ibc_perf_repro::framework::SweepGrid::new(base.clone())
        .topologies([Topology::line(2)])
        .points();
    assert_eq!(points.len(), 1);
    assert_eq!(
        scenarios::run(&base).metrics,
        scenarios::run(&points[0]).metrics
    );
}

/// A hub with two spokes, the workload on the spoke→hub channels and the hop
/// plan chaining each first leg onto a hub→spoke channel.
fn hub_spec(seed: u64, transfers: u64) -> ExperimentSpec {
    ExperimentSpec::latency()
        .named("topology/hops")
        .transfers(transfers)
        .submission_blocks(1)
        .measurement_blocks(4)
        .rtt_ms(0)
        .relayers(1)
        .channel_weights([1, 1, 0, 0])
        .hop_plan(Topology::hub_and_spoke_routes(2))
        .topology(Topology::hub_and_spoke(2))
        .seed(seed)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Across seeds and batch sizes, the hop forwarder conserves transfers:
    /// second legs are triggered only by committed first-leg acks (and never
    /// broadcast before them), every first-leg ack produces exactly one
    /// second-leg transfer, and both legs of every route acknowledge the
    /// same number of packets — nothing is forwarded twice, dropped, or
    /// completed one-legged.
    #[test]
    fn hop_forwarding_conserves_transfers(seed in 0u64..1_000, transfers in 40u64..120) {
        let spec = hub_spec(seed, transfers);
        let run = scenarios::run_raw(&spec);
        let routes: Vec<HopRoute> = run.hop_routes.clone();
        prop_assert_eq!(routes.len(), 2);

        // Causality: a second-leg broadcast never precedes the first-leg
        // ack commit that triggered it, and every broadcast was accepted.
        for record in &run.forwards {
            prop_assert!(record.accepted, "rejected forward: {:?}", record.error);
            prop_assert!(
                record.submitted_at >= record.triggered_at,
                "second leg broadcast at {:?} before its trigger at {:?}",
                record.submitted_at,
                record.triggered_at
            );
        }

        // Conservation, globally: one second-leg transfer per workload
        // transfer, none rejected.
        prop_assert_eq!(run.forward_stats.submitted, transfers);
        prop_assert_eq!(run.forward_stats.rejected, 0);

        // Conservation, per route: the second leg carries exactly the
        // packets the first leg acknowledged, and both legs acknowledge
        // the same count — no transfer completes without both legs.
        let acks_on = |channel: usize| {
            run.telemetry
                .times_for_step_on(channel as u64, TransferStep::AckConfirmation)
                .len() as u64
        };
        for (ri, route) in routes.iter().enumerate() {
            let first_acks = acks_on(route.first_leg);
            let forwarded: u64 = run
                .forwards
                .iter()
                .filter(|r| r.route == ri && r.accepted)
                .map(|r| r.transfers as u64)
                .sum();
            prop_assert_eq!(
                forwarded,
                first_acks,
                "route {} forwarded {} legs for {} first-leg acks",
                ri,
                forwarded,
                first_acks
            );
            prop_assert_eq!(acks_on(route.second_leg), first_acks);
        }

        // Every leg of every transfer completed: two acks per transfer.
        let total_acks = run
            .telemetry
            .times_for_step(TransferStep::AckConfirmation)
            .len() as u64;
        prop_assert_eq!(total_acks, 2 * transfers);
    }
}
