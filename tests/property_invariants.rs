//! Property-based tests on core data structures and protocol invariants.

use proptest::prelude::*;

use ibc_perf_repro::chain::account::AccountKeeper;
use ibc_perf_repro::chain::bank::BankModule;
use ibc_perf_repro::chain::coin::Coin;
use ibc_perf_repro::ibc::commitment::CommitmentStore;
use ibc_perf_repro::ibc::height::Height;
use ibc_perf_repro::ibc::ids::{ChannelId, PortId, Sequence};
use ibc_perf_repro::ibc::packet::Packet;
use ibc_perf_repro::ibc::transfer::{
    escrow_address, on_recv_packet, refund, send_coins, BankKeeper, FungibleTokenPacketData,
};
use ibc_perf_repro::sim::{FifoServer, SimDuration, SimTime};
use ibc_perf_repro::tendermint::hash::sha256;
use ibc_perf_repro::tendermint::merkle::{prove, simple_root};

proptest! {
    /// Merkle proofs generated for any leaf of any tree verify against the
    /// root, and fail against a different leaf.
    #[test]
    fn merkle_proofs_verify_for_all_leaves(leaves in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..64), 1..40), index in any::<prop::sample::Index>()) {
        let refs: Vec<&[u8]> = leaves.iter().map(|l| l.as_slice()).collect();
        let i = index.index(refs.len());
        let root = simple_root(refs.iter().copied());
        let (proved_root, proof) = prove(refs.iter().copied(), i).expect("index in range");
        prop_assert_eq!(proved_root, root);
        prop_assert!(proof.verify(&root, &leaves[i]));
        prop_assert!(!proof.verify(&root, b"not-a-leaf-of-this-tree"));
    }

    /// The commitment store root is insensitive to insertion order.
    #[test]
    fn commitment_root_is_order_independent(entries in prop::collection::btree_map("[a-z]{1,12}", prop::collection::vec(any::<u8>(), 1..16), 1..20)) {
        let mut forward = CommitmentStore::new();
        let mut backward = CommitmentStore::new();
        for (key, value) in entries.iter() {
            forward.set(key.clone(), sha256(value));
        }
        for (key, value) in entries.iter().rev() {
            backward.set(key.clone(), sha256(value));
        }
        prop_assert_eq!(forward.root(), backward.root());
    }

    /// Bank transfers never create or destroy supply, whatever sequence of
    /// valid operations runs.
    #[test]
    fn bank_transfers_conserve_supply(amounts in prop::collection::vec(1u128..1_000, 1..30)) {
        let mut bank = BankModule::new();
        let alice = "alice".into();
        let bob = "bob".into();
        let initial: u128 = 1_000_000;
        bank.mint_coins(&alice, &Coin::new("uatom", initial));
        for amount in amounts {
            let _ = bank.transfer(&alice, &bob, &Coin::new("uatom", amount));
            let _ = bank.transfer(&bob, &alice, &Coin::new("uatom", amount / 2));
        }
        prop_assert_eq!(bank.total_supply("uatom"), initial);
        prop_assert_eq!(bank.balance(&alice, "uatom") + bank.balance(&bob, "uatom"), initial);
    }

    /// ICS-20 escrow/refund round-trips leave the sender's balance unchanged,
    /// and escrow/recv conserves value across the two chains.
    #[test]
    fn ics20_escrow_and_refund_conserve_value(amount in 1u128..10_000) {
        let port = PortId::transfer();
        let chan_a = ChannelId::with_index(0);
        let chan_b = ChannelId::with_index(0);
        let mut bank_a = BankModule::new();
        let mut bank_b = BankModule::new();
        bank_a.mint_coins(&"alice".into(), &Coin::new("uatom", amount));

        let data = FungibleTokenPacketData {
            denom: "uatom".into(),
            amount,
            sender: "alice".into(),
            receiver: "bob".into(),
        };
        send_coins(&mut bank_a, &port, &chan_a, &data).unwrap();
        let escrow = escrow_address(&port, &chan_a);
        prop_assert_eq!(bank_a.balance(&"alice".into(), "uatom"), 0);
        prop_assert_eq!(bank_a.balance(&escrow.as_str().into(), "uatom"), amount);

        let packet = Packet {
            sequence: Sequence::FIRST,
            source_port: port.clone(),
            source_channel: chan_a.clone(),
            destination_port: port.clone(),
            destination_channel: chan_b.clone(),
            data: data.to_bytes(),
            timeout_height: Height::ZERO,
            timeout_timestamp: SimTime::ZERO,
        };
        // Either the packet is delivered (vouchers minted on B)…
        let ack = on_recv_packet(&mut bank_b, &packet);
        prop_assert!(ack.is_success());
        let voucher = format!("transfer/{chan_b}/uatom");
        prop_assert_eq!(BankKeeper::send(&mut bank_b, "bob", "carol", &voucher, amount), Ok(()));
        // …or, on a parallel universe source chain, it times out and the
        // refund restores the sender in full.
        let mut bank_a2 = BankModule::new();
        bank_a2.mint_coins(&"alice".into(), &Coin::new("uatom", amount));
        send_coins(&mut bank_a2, &port, &chan_a, &data).unwrap();
        refund(&mut bank_a2, &packet).unwrap();
        prop_assert_eq!(bank_a2.balance(&"alice".into(), "uatom"), amount);
    }

    /// The FIFO server never finishes a job before it arrived, never before a
    /// previously submitted job, and its busy time equals the sum of service
    /// times.
    #[test]
    fn fifo_server_is_causal_and_work_conserving(jobs in prop::collection::vec((0u64..10_000, 1u64..5_000), 1..50)) {
        let mut server = FifoServer::new("prop");
        let mut arrivals: Vec<(u64, u64)> = jobs;
        arrivals.sort_by_key(|(at, _)| *at);
        let mut previous_completion = SimTime::ZERO;
        let mut total_service = SimDuration::ZERO;
        for (at, service_ms) in arrivals {
            let arrival = SimTime::from_nanos(at * 1_000_000);
            let service = SimDuration::from_millis(service_ms);
            let completion = server.submit(arrival, service);
            prop_assert!(completion >= arrival + service);
            prop_assert!(completion >= previous_completion);
            previous_completion = completion;
            total_service += service;
        }
        prop_assert_eq!(server.busy_time(), total_service);
    }

    /// Account sequences increase monotonically no matter the interleaving of
    /// increments.
    #[test]
    fn account_sequences_are_monotone(ops in prop::collection::vec(0usize..3, 1..60)) {
        let mut keeper = AccountKeeper::new();
        let users = ["a", "b", "c"];
        for user in users {
            keeper.get_or_create(&user.into());
        }
        let mut last = [0u64; 3];
        for op in ops {
            keeper.increment_sequence(&users[op].into());
            let now = keeper.sequence(&users[op].into());
            prop_assert_eq!(now, last[op] + 1);
            last[op] = now;
        }
    }
}
