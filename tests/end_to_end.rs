//! Cross-crate integration tests: full cross-chain transfer life cycles
//! driven through the public API of the umbrella crate.

use ibc_perf_repro::framework::analysis;
use ibc_perf_repro::framework::scenarios;
use ibc_perf_repro::framework::spec::ExperimentSpec;
use ibc_perf_repro::relayer::telemetry::TransferStep;

fn small_latency_spec(transfers: u64, submission_blocks: u64, rtt_ms: u64) -> ExperimentSpec {
    ExperimentSpec::latency()
        .transfers(transfers)
        .submission_blocks(submission_blocks)
        // Classify completion over a 4-block window (the run itself still
        // continues to full completion).
        .measurement_blocks(4)
        .rtt_ms(rtt_ms)
        .user_accounts(4)
        .seed(42)
}

#[test]
fn transfers_complete_end_to_end_and_preserve_token_supply() {
    let spec = small_latency_spec(250, 1, 200);
    let run = scenarios::run_raw(&spec);

    assert_eq!(run.submission.submitted, 250);
    assert_eq!(
        run.telemetry.count_for_step(TransferStep::AckConfirmation),
        250
    );
    let breakdown = analysis::completion_breakdown(&run);
    assert_eq!(breakdown.completed, 250);
    assert_eq!(
        breakdown.partial + breakdown.initiated + breakdown.not_committed,
        0
    );

    // The unified outcome agrees with the raw analysis.
    let outcome = scenarios::outcome_from(&spec, &run);
    assert_eq!(outcome.completed(), 250);
    assert_eq!(outcome.submitted(), 250);

    // Escrowed tokens on the source chain equal the vouchers minted on the
    // destination chain (ICS-20 conservation).
    let escrow =
        ibc_perf_repro::ibc::transfer::escrow_address(&run.path.port, &run.path.src_channel);
    let escrowed = run
        .chain_a
        .borrow()
        .app()
        .bank()
        .balance(&escrow.as_str().into(), "uatom");
    let voucher = format!("transfer/{}/uatom", run.path.dst_channel);
    let minted = run.chain_b.borrow().app().bank().total_supply(&voucher);
    assert_eq!(escrowed, 250);
    assert_eq!(minted, 250);
}

#[test]
fn every_lifecycle_step_is_ordered_for_every_packet() {
    let run = scenarios::run_raw(&small_latency_spec(120, 2, 0));
    let mut fully_completed = 0usize;
    for seq in run.telemetry.sequences() {
        let mut previous = None;
        let mut present = 0;
        for step in TransferStep::ALL {
            let Some(time) = run.telemetry.step_time(seq, step) else {
                continue;
            };
            present += 1;
            if let Some(prev) = previous {
                assert!(time >= prev, "step {step:?} of packet {seq} went backwards");
            }
            previous = Some(time);
        }
        // Every observed packet progressed at least through the transfer
        // phase and the receive broadcast (steps 1-6).
        assert!(present >= 6, "packet {seq} only recorded {present} steps");
        if present == TransferStep::ALL.len() {
            fully_completed += 1;
        }
    }
    // And the majority of the batch runs through all 13 steps.
    assert!(
        fully_completed * 2 >= run.telemetry.len(),
        "only {fully_completed} of {} packets completed all steps",
        run.telemetry.len()
    );
}

#[test]
fn two_relayers_cause_redundancy_and_lower_throughput_than_one() {
    let base = ExperimentSpec::relayer_throughput()
        .input_rate(60)
        .rtt_ms(200)
        .measurement_blocks(10)
        .seed(3);
    let one = scenarios::run(&base.clone().relayers(1));
    let two = scenarios::run(&base.relayers(2));
    assert!(
        two.redundant_packet_errors() > 0,
        "two relayers must produce redundant work"
    );
    assert!(
        two.throughput_tfps() <= one.throughput_tfps() * 1.05,
        "a second relayer must not improve throughput (one: {:.1}, two: {:.1})",
        one.throughput_tfps(),
        two.throughput_tfps()
    );
}

#[test]
fn deterministic_runs_for_equal_seeds() {
    let spec = ExperimentSpec::relayer_throughput()
        .input_rate(40)
        .relayers(1)
        .rtt_ms(200)
        .measurement_blocks(6)
        .seed(9);
    let a = scenarios::run(&spec);
    let b = scenarios::run(&spec);
    assert_eq!(a, b);
    let c = scenarios::run(&spec.seed(10));
    // A different seed may legitimately produce the same aggregate numbers,
    // but the run must at least be well-formed.
    assert_eq!(
        c.completed() + c.partial() + c.initiated() + c.not_committed(),
        40 * 5 * 6
    );
}

#[test]
fn splitting_a_large_batch_reduces_completion_latency() {
    let base = ExperimentSpec::latency()
        .transfers(1_000)
        .rtt_ms(200)
        .seed(5);
    let single = scenarios::run(&base.clone().submission_blocks(1));
    let split = scenarios::run(&base.submission_blocks(4));
    assert!(single.completion_latency_secs() > 0.0);
    assert!(
        split.completion_latency_secs() < single.completion_latency_secs(),
        "splitting submission must reduce latency (1 block: {:.0}s, 4 blocks: {:.0}s)",
        single.completion_latency_secs(),
        split.completion_latency_secs()
    );
    // The receive phase dominates the transfer and ack phases, as in Fig. 12.
    assert!(single.recv_phase_secs() > single.ack_phase_secs());
}

#[test]
fn tendermint_throughput_saturates_with_input_rate() {
    let base = ExperimentSpec::tendermint_throughput().rtt_ms(200).seed(2);
    let low = scenarios::run(&base.clone().input_rate(40));
    let high = scenarios::run(&base.input_rate(400));
    assert!(high.tendermint_throughput_tfps() > low.tendermint_throughput_tfps());
    // At low rates everything requested is committed.
    assert_eq!(low.committed(), low.requests_made());
}
