//! Cross-crate integration tests: full cross-chain transfer life cycles
//! driven through the public API of the umbrella crate.

use ibc_perf_repro::framework::analysis;
use ibc_perf_repro::framework::config::{DeploymentConfig, WorkloadConfig};
use ibc_perf_repro::framework::runner::run_experiment;
use ibc_perf_repro::framework::scenarios;
use ibc_perf_repro::relayer::telemetry::TransferStep;

fn small_deployment(relayers: usize, rtt_ms: u64) -> DeploymentConfig {
    DeploymentConfig {
        relayer_count: relayers,
        network_rtt_ms: rtt_ms,
        user_accounts: 4,
        ..DeploymentConfig::default()
    }
}

#[test]
fn transfers_complete_end_to_end_and_preserve_token_supply() {
    let workload = WorkloadConfig {
        total_transfers: 250,
        submission_blocks: 1,
        measurement_blocks: 4,
        run_to_completion: true,
        completion_grace_blocks: 60,
        ..WorkloadConfig::default()
    };
    let run = run_experiment(&small_deployment(1, 200), &workload);

    assert_eq!(run.submission.submitted, 250);
    assert_eq!(run.telemetry.count_for_step(TransferStep::AckConfirmation), 250);
    let breakdown = analysis::completion_breakdown(&run);
    assert_eq!(breakdown.completed, 250);
    assert_eq!(breakdown.partial + breakdown.initiated + breakdown.not_committed, 0);

    // Escrowed tokens on the source chain equal the vouchers minted on the
    // destination chain (ICS-20 conservation).
    let escrow = ibc_perf_repro::ibc::transfer::escrow_address(&run.path.port, &run.path.src_channel);
    let escrowed = run.chain_a.borrow().app().bank().balance(&escrow.as_str().into(), "uatom");
    let voucher = format!("transfer/{}/uatom", run.path.dst_channel);
    let minted = run.chain_b.borrow().app().bank().total_supply(&voucher);
    assert_eq!(escrowed, 250);
    assert_eq!(minted, 250);
}

#[test]
fn every_lifecycle_step_is_ordered_for_every_packet() {
    let workload = WorkloadConfig {
        total_transfers: 120,
        submission_blocks: 2,
        measurement_blocks: 4,
        run_to_completion: true,
        completion_grace_blocks: 60,
        ..WorkloadConfig::default()
    };
    let run = run_experiment(&small_deployment(1, 0), &workload);
    let mut fully_completed = 0usize;
    for seq in run.telemetry.sequences() {
        let mut previous = None;
        let mut present = 0;
        for step in TransferStep::ALL {
            let Some(time) = run.telemetry.step_time(seq, step) else {
                continue;
            };
            present += 1;
            if let Some(prev) = previous {
                assert!(time >= prev, "step {step:?} of packet {seq} went backwards");
            }
            previous = Some(time);
        }
        // Every observed packet progressed at least through the transfer
        // phase and the receive broadcast (steps 1-6).
        assert!(present >= 6, "packet {seq} only recorded {present} steps");
        if present == TransferStep::ALL.len() {
            fully_completed += 1;
        }
    }
    // And the majority of the batch runs through all 13 steps.
    assert!(
        fully_completed * 2 >= run.telemetry.len(),
        "only {fully_completed} of {} packets completed all steps",
        run.telemetry.len()
    );
}

#[test]
fn two_relayers_cause_redundancy_and_lower_throughput_than_one() {
    let one = scenarios::relayer_throughput(60, 1, 200, 10, 3);
    let two = scenarios::relayer_throughput(60, 2, 200, 10, 3);
    assert!(two.redundant_packet_errors > 0, "two relayers must produce redundant work");
    assert!(
        two.throughput_tfps <= one.throughput_tfps * 1.05,
        "a second relayer must not improve throughput (one: {:.1}, two: {:.1})",
        one.throughput_tfps,
        two.throughput_tfps
    );
}

#[test]
fn deterministic_runs_for_equal_seeds() {
    let a = scenarios::relayer_throughput(40, 1, 200, 6, 9);
    let b = scenarios::relayer_throughput(40, 1, 200, 6, 9);
    assert_eq!(a, b);
    let c = scenarios::relayer_throughput(40, 1, 200, 6, 10);
    // A different seed may legitimately produce the same aggregate numbers,
    // but the run must at least be well-formed.
    assert!(c.completed + c.partial + c.initiated + c.not_committed == 40 * 5 * 6);
}

#[test]
fn splitting_a_large_batch_reduces_completion_latency() {
    let single = scenarios::latency_run(1_000, 1, 200, 5);
    let split = scenarios::latency_run(1_000, 4, 200, 5);
    assert!(single.completion_latency_secs > 0.0);
    assert!(
        split.completion_latency_secs < single.completion_latency_secs,
        "splitting submission must reduce latency (1 block: {:.0}s, 4 blocks: {:.0}s)",
        single.completion_latency_secs,
        split.completion_latency_secs
    );
    // The receive phase dominates the transfer and ack phases, as in Fig. 12.
    assert!(single.recv_phase_secs > single.ack_phase_secs);
}

#[test]
fn tendermint_throughput_saturates_with_input_rate() {
    let low = scenarios::tendermint_throughput(40, 200, 2);
    let high = scenarios::tendermint_throughput(400, 200, 2);
    assert!(high.throughput_tfps > low.throughput_tfps);
    // At low rates everything requested is committed.
    assert_eq!(low.committed, low.requests_made);
}
