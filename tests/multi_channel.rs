//! Acceptance tests for the multi-channel relaying subsystem.
//!
//! * **Determinism**: small two-channel runs with the default strategy are
//!   pinned by a golden fixture (regenerate with
//!   `cargo run --release -p xcc-bench --bin goldens -- --multi-channel`).
//! * **Per-channel accounting**: the per-channel completion breakdowns sum
//!   to the aggregate, channel by channel and category by category.
//! * **Channel policies**: dedicated relayers eliminate the redundant work
//!   fair-share instances duplicate, and weighted workloads land on the
//!   channels their weights name.
//! * **Deployment-limit knobs**: a tiny WebSocket frame limit strands the
//!   oversized window's transfers; enabling the packet-clear interval
//!   rescues them with the frame limit unchanged.

use ibc_perf_repro::framework::analysis;
use ibc_perf_repro::framework::outcome::keys;
use ibc_perf_repro::framework::scenarios;
use ibc_perf_repro::framework::spec::ExperimentSpec;
use ibc_perf_repro::framework::ScenarioOutcome;
use ibc_perf_repro::relayer::strategy::{ChannelPolicy, RelayerStrategy};
use ibc_perf_repro::relayer::telemetry::TransferStep;

const MULTI_CHANNEL_GOLDENS: &str = include_str!("fixtures/multi_channel_goldens.json");

#[test]
fn two_channel_default_strategy_replays_the_golden_fixture() {
    let goldens: Vec<ScenarioOutcome> =
        serde_json::from_str(MULTI_CHANNEL_GOLDENS).expect("golden fixture parses");
    assert_eq!(goldens.len(), 2, "one uniform + one weighted golden");
    for golden in goldens {
        assert_eq!(golden.spec.deployment.channel_count, 2);
        assert_eq!(
            golden.spec.deployment.relayer_strategy,
            RelayerStrategy::default(),
            "goldens pin the default strategy"
        );
        // Multi-channel outcomes carry per-channel metrics.
        assert!(golden.metric_on(keys::COMPLETED, 0).is_some());
        assert!(golden.metric_on(keys::COMPLETED, 1).is_some());
        let rerun = scenarios::run(&golden.spec);
        assert_eq!(
            rerun.metrics, golden.metrics,
            "{} diverged from its golden outcome",
            golden.spec.name
        );
    }
}

fn two_channel_spec() -> ExperimentSpec {
    ExperimentSpec::relayer_throughput()
        .input_rate(40)
        .relayers(1)
        .channels(2)
        .rtt_ms(0)
        .measurement_blocks(5)
        .seed(7)
}

#[test]
fn per_channel_breakdowns_sum_to_the_aggregate() {
    let spec = two_channel_spec();
    let run = scenarios::run_raw(&spec);
    let aggregate = analysis::completion_breakdown(&run);
    assert_eq!(run.paths.len(), 2);

    let mut sum = [0u64; 4];
    for channel in 0..run.paths.len() {
        let b = analysis::completion_breakdown_on(&run, channel);
        sum[0] += b.completed;
        sum[1] += b.partial;
        sum[2] += b.initiated;
        sum[3] += b.not_committed;
        // Uniform round-robin: both channels carry traffic.
        assert!(
            analysis::committed_transfers_on(&run, channel) > 0,
            "channel {channel} got no traffic"
        );
    }
    assert_eq!(sum[0], aggregate.completed);
    assert_eq!(sum[1], aggregate.partial);
    assert_eq!(sum[2], aggregate.initiated);
    assert_eq!(sum[3], aggregate.not_committed);
    assert_eq!(aggregate.total(), run.submission.requests_made);

    // The outcome's per-channel metrics agree with the analysis, and the
    // per-channel completed counts sum to the aggregate metric.
    let outcome = scenarios::outcome_from(&spec, &run);
    let per_channel_total: u64 = (0..run.paths.len())
        .map(|ch| outcome.completed_on(ch))
        .sum();
    assert_eq!(per_channel_total, outcome.completed());
    for channel in 0..run.paths.len() {
        assert_eq!(
            outcome.completed_on(channel),
            analysis::completion_breakdown_on(&run, channel).completed
        );
    }
}

#[test]
fn two_channel_transfers_complete_on_both_channels_end_to_end() {
    // One submission window, run to completion: every transfer must finish.
    // (Multi-window workloads can lose a window to the §V account-sequence
    // race when consecutive flushes straddle a commit — a modeled Hermes
    // behaviour that single-channel runs exhibit identically.)
    let spec = ExperimentSpec::latency()
        .transfers(400)
        .submission_blocks(1)
        .rtt_ms(0)
        .channels(2)
        .user_accounts(4)
        .seed(1);
    let run = scenarios::run_raw(&spec);
    // Every requested transfer acknowledges back, despite the interleaving.
    assert_eq!(
        run.telemetry.count_for_step(TransferStep::AckConfirmation) as u64,
        run.submission.submitted
    );
    // Vouchers exist for both destination channel ends: funds really moved
    // over two distinct channels.
    let chain_b = run.chain_b.borrow();
    for path in &run.paths {
        let voucher = format!("transfer/{}/uatom", path.dst_channel);
        let total: u128 = (0..4)
            .map(|i| {
                chain_b
                    .app()
                    .bank()
                    .balance(&format!("user-{i}").into(), &voucher)
            })
            .sum();
        assert!(total > 0, "no vouchers for {}", path.dst_channel);
    }
}

#[test]
fn weighted_workload_respects_channel_weights() {
    let spec = ExperimentSpec::relayer_throughput()
        .input_rate(60)
        .relayers(1)
        .channels(2)
        .channel_weights([3, 1])
        .rtt_ms(0)
        .measurement_blocks(4)
        .seed(3);
    let run = scenarios::run_raw(&spec);
    let on_0 = analysis::committed_transfers_on(&run, 0);
    let on_1 = analysis::committed_transfers_on(&run, 1);
    assert_eq!(on_0 + on_1, analysis::committed_transfers(&run));
    // 3:1 weights at 3 transactions per window: channel 0 gets at least
    // twice channel 1's traffic.
    assert!(
        on_0 >= 2 * on_1 && on_1 > 0,
        "weights not respected: {on_0} vs {on_1}"
    );
}

#[test]
fn dedicated_relayers_eliminate_cross_instance_redundancy() {
    let base = ExperimentSpec::relayer_throughput()
        .input_rate(40)
        .relayers(2)
        .channels(2)
        .rtt_ms(200)
        .measurement_blocks(5)
        .seed(3);
    let fair = scenarios::run(&base.clone());
    // `relayer_count` is the per-channel replica count for a dedicated
    // fleet, so the fair deployment's two shared processes compare against
    // one dedicated process per channel — the same total fleet size.
    let dedicated = scenarios::run(&base.clone().relayers(1).strategy(
        RelayerStrategy::with_channel_policy(ChannelPolicy::Dedicated),
    ));
    let priority = scenarios::run(&base.clone().strategy(RelayerStrategy::with_channel_policy(
        ChannelPolicy::Priority,
    )));
    assert!(
        fair.redundant_packet_errors() > 0,
        "two fair-share relayers must collide"
    );
    assert_eq!(
        dedicated.redundant_packet_errors(),
        0,
        "one relayer process per channel leaves nothing to duplicate"
    );
    // Asking a dedicated fleet for redundancy brings the collisions back:
    // two replicas per channel compete exactly like two shared instances.
    let redundant_fleet = scenarios::run(&base.strategy(RelayerStrategy::with_channel_policy(
        ChannelPolicy::Dedicated,
    )));
    assert!(
        redundant_fleet.redundant_packet_errors() > 0,
        "two replicas per channel must collide within their channel group"
    );
    // Every policy conserves the requested transfers.
    for outcome in [&fair, &dedicated, &priority, &redundant_fleet] {
        assert_eq!(
            outcome.completed() + outcome.partial() + outcome.initiated() + outcome.not_committed(),
            outcome.requests_made()
        );
    }
}

#[test]
fn packet_clearing_rescues_transfers_stranded_by_the_frame_limit() {
    // An oversized first window against a 64 KiB frame: event collection
    // fails and everything is stuck, exactly like §V at 16 MiB.
    let base = ExperimentSpec::websocket_limit()
        .transfers(2_000)
        .frame_limit(64 << 10)
        .seed(42);
    let stranded = scenarios::run(&base.clone());
    assert!(stranded.event_collection_failures() > 0);
    assert!(
        stranded.stuck() > stranded.requests_made() / 2,
        "most transfers must be stuck without clearing ({} of {})",
        stranded.stuck(),
        stranded.requests_made()
    );
    assert_eq!(stranded.packets_cleared(), 0);

    // Same frame limit, clearing every 3 blocks: the scan finds the
    // stranded packets in chain state and relays them.
    let cleared = scenarios::run(&base.packet_clearing(3));
    assert!(cleared.packets_cleared() > 0);
    assert!(
        cleared.completed() > stranded.completed(),
        "clearing must rescue transfers ({} vs {})",
        cleared.completed(),
        stranded.completed()
    );
    assert!(
        cleared.stuck() < stranded.stuck(),
        "clearing must shrink the stuck set ({} vs {})",
        cleared.stuck(),
        stranded.stuck()
    );
}
