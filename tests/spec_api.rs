//! Acceptance tests for the spec-driven experiment API: serde round-trips,
//! registry completeness, and parallel-vs-sequential sweep determinism.

use ibc_perf_repro::framework::registry;
use ibc_perf_repro::framework::spec::{ExperimentSpec, ScenarioKind};
use ibc_perf_repro::framework::sweep::{self, SweepGrid, SweepMode};
use ibc_perf_repro::framework::ScenarioOutcome;

#[test]
fn every_spec_family_round_trips_through_serde_identically() {
    let specs = [
        ExperimentSpec::tendermint_throughput()
            .input_rate(250)
            .rtt_ms(200)
            .seed(1),
        ExperimentSpec::relayer_throughput()
            .input_rate(60)
            .relayers(2)
            .rtt_ms(200)
            .measurement_blocks(10)
            .seed(42),
        ExperimentSpec::latency()
            .transfers(5_000)
            .submission_blocks(4)
            .seed(7),
        ExperimentSpec::websocket_limit()
            .transfers(60_000)
            .named("ws"),
    ];
    for spec in specs {
        let json = spec.to_json();
        let parsed = ExperimentSpec::from_json(&json).unwrap();
        assert_eq!(parsed, spec);
        // JSON → spec → JSON is byte-identical.
        assert_eq!(parsed.to_json(), json);
    }
}

#[test]
fn spec_json_is_human_readable_and_complete() {
    let json = ExperimentSpec::relayer_throughput()
        .input_rate(60)
        .to_json();
    for field in [
        "name",
        "kind",
        "deployment",
        "workload",
        "relayer_count",
        "network_rtt_ms",
        "seed",
    ] {
        assert!(json.contains(field), "spec JSON misses `{field}`:\n{json}");
    }
}

#[test]
fn registry_lookup_returns_every_figure_name() {
    let expected = [
        "fig6",
        "fig7",
        "fig8",
        "fig9",
        "fig10",
        "fig11",
        "fig12",
        "fig13",
        "table1",
        "websocket_limit",
        "fig8_batched_pulls",
        "fig11_coordinated",
        "fig12_parallel_fetch",
        "fig13_adaptive_submission",
        "multi_channel_scaling",
        "frame_limit_sweep",
        "channel_contention",
        "sequence_race",
        "dedicated_scaling",
        "batched_pull_calibration",
        "relayer_crash",
        "chain_halt",
        "client_expiry",
        "hub_spoke_scaling",
        "mesh_contention",
        "smoke",
    ];
    assert_eq!(registry::names(), expected);
    for name in expected {
        let entry = registry::get(name).unwrap_or_else(|| panic!("{name} missing from registry"));
        for mode in [SweepMode::Quick, SweepMode::Full] {
            let grid = entry.grid(mode);
            assert!(!grid.points().is_empty(), "{name} expands to no points");
            // Every point is a well-formed, serializable spec.
            for point in grid.points() {
                assert_eq!(ExperimentSpec::from_json(&point.to_json()).unwrap(), point);
            }
        }
    }
}

#[test]
fn registry_grids_cover_all_scenario_kinds() {
    let kinds: Vec<ScenarioKind> = registry::entries()
        .iter()
        .map(|e| e.grid(SweepMode::Quick).base.kind)
        .collect();
    for kind in [
        ScenarioKind::TendermintThroughput,
        ScenarioKind::RelayerThroughput,
        ScenarioKind::Latency,
        ScenarioKind::WebSocketLimit,
    ] {
        assert!(
            kinds.contains(&kind),
            "no registered scenario covers {kind:?}"
        );
    }
}

#[test]
fn parallel_sweep_is_byte_identical_to_sequential() {
    // A multi-point grid crossing rates × RTTs × seeds, small enough for CI.
    let grid = SweepGrid::new(
        ExperimentSpec::relayer_throughput()
            .measurement_blocks(4)
            .seed(42),
    )
    .input_rates([10, 20])
    .rtts_ms([0, 200])
    .seeds([1, 2]);
    let specs = grid.points();
    assert_eq!(specs.len(), 8);

    let sequential = sweep::run_sequential(&specs);
    let parallel = sweep::run_parallel(&specs, 4);
    assert_eq!(sequential, parallel);

    // Byte-identical, not merely equal: serialize both outcome lists.
    let seq_json: Vec<String> = sequential.iter().map(ScenarioOutcome::to_json).collect();
    let par_json: Vec<String> = parallel.iter().map(ScenarioOutcome::to_json).collect();
    assert_eq!(seq_json, par_json);

    // And the sweep did real work: outcomes carry live metrics.
    assert!(sequential.iter().all(|o| o.requests_made() > 0));
}

#[test]
fn relayer_and_transfer_axes_expand_the_grid() {
    // The fleet-size and workload-size axes: every combination becomes a
    // point, and the axis values land on the right spec fields.
    let grid = SweepGrid::new(
        ExperimentSpec::latency()
            .transfers(100)
            .submission_blocks(1)
            .seed(42),
    )
    .relayer_counts([1, 2, 4])
    .transfer_counts([100, 1_000]);
    let specs = grid.points();
    assert_eq!(specs.len(), 6);

    let mut fleet_sizes: Vec<usize> = specs.iter().map(|p| p.deployment.relayer_count).collect();
    fleet_sizes.sort_unstable();
    fleet_sizes.dedup();
    assert_eq!(fleet_sizes, [1, 2, 4]);

    let mut transfers: Vec<u64> = specs.iter().map(|p| p.workload.total_transfers).collect();
    transfers.sort_unstable();
    transfers.dedup();
    assert_eq!(transfers, [100, 1_000]);
}

#[test]
fn derived_seeds_give_points_independent_streams() {
    let grid = SweepGrid::new(ExperimentSpec::tendermint_throughput().seed(42)).derived_seeds(3);
    let seeds: Vec<u64> = grid.points().iter().map(|p| p.deployment.seed).collect();
    assert_eq!(seeds.len(), 3);
    assert_eq!(seeds, sweep::derived_seeds(42, 3));
    let mut unique = seeds.clone();
    unique.sort_unstable();
    unique.dedup();
    assert_eq!(unique.len(), 3, "derived seeds must be distinct");
}
