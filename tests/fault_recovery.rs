//! Recovery-property tests for the fault-injection subsystem.
//!
//! Three pillars, matching the dependability claims the fault scenarios add
//! on top of the paper's performance testbed:
//!
//! * **No-fault equivalence**: attaching an explicitly empty [`FaultPlan`]
//!   replays every pre-existing golden fixture bit-identically — installing
//!   the fault subsystem costs nothing when unused.
//! * **Fixture replay and the recovery bound**: the three fault-scenario
//!   fixtures replay bit-identically, and the crash arm's time-to-recovery
//!   obeys the packet-clearing bound of one `packet_clear_interval` plus
//!   one block.
//! * **Recovery properties**: across seeds, crash instants and outage
//!   lengths, a crashed-and-restarted relayer never double-submits a
//!   receive the destination chain already committed, and — with packet
//!   clearing enabled — every transfer initiated before the fault
//!   eventually completes (nothing strands).

use proptest::prelude::*;

use ibc_perf_repro::framework::fault::{FaultEvent, FaultPlan};
use ibc_perf_repro::framework::scenarios;
use ibc_perf_repro::framework::spec::ExperimentSpec;
use ibc_perf_repro::framework::ScenarioOutcome;
use ibc_perf_repro::sim::SimDuration;

const RELAYER_CRASH_GOLDENS: &str = include_str!("fixtures/relayer_crash_goldens.json");
const CHAIN_HALT_GOLDENS: &str = include_str!("fixtures/chain_halt_goldens.json");
const CLIENT_EXPIRY_GOLDENS: &str = include_str!("fixtures/client_expiry_goldens.json");

/// The fixture sets that predate the fault subsystem, all captured with the
/// default (empty) fault plan.
const PRE_FAULT_GOLDENS: [(&str, &str); 4] = [
    (
        "default_strategy",
        include_str!("fixtures/default_strategy_goldens.json"),
    ),
    (
        "multi_channel",
        include_str!("fixtures/multi_channel_goldens.json"),
    ),
    (
        "sequence_race",
        include_str!("fixtures/sequence_race_goldens.json"),
    ),
    (
        "dedicated_scaling",
        include_str!("fixtures/dedicated_scaling_goldens.json"),
    ),
];

fn parse(fixture: &str) -> Vec<ScenarioOutcome> {
    serde_json::from_str(fixture).expect("golden fixture parses")
}

/// Every pre-fault golden replays bit-identically when the spec carries an
/// *explicit* empty fault plan: an empty plan schedules no fault events at
/// all, so the event loop's trace is untouched — the fault subsystem is
/// strictly pay-for-what-you-use.
#[test]
fn empty_fault_plan_replays_pre_fault_goldens_bit_identically() {
    for (set, fixture) in PRE_FAULT_GOLDENS {
        for golden in parse(fixture) {
            assert!(
                golden.spec.deployment.fault_plan.is_empty(),
                "{set}: pre-fault goldens must pin the empty plan"
            );
            let spec = golden.spec.clone().fault_plan(FaultPlan::none());
            let rerun = scenarios::run(&spec);
            assert_eq!(
                rerun.metrics, golden.metrics,
                "{} diverged under an explicit empty fault plan",
                golden.spec.name
            );
        }
    }
}

/// The three fault-scenario fixtures replay bit-identically — fault event
/// scheduling, crash/restart replay, halt stretching and client expiry are
/// all inside the deterministic event-loop trace the fixtures pin.
#[test]
fn fault_scenario_fixtures_replay_bit_identically() {
    let sets = [
        ("relayer_crash", RELAYER_CRASH_GOLDENS, 2usize),
        ("chain_halt", CHAIN_HALT_GOLDENS, 3),
        ("client_expiry", CLIENT_EXPIRY_GOLDENS, 2),
    ];
    for (set, fixture, arms) in sets {
        let goldens = parse(fixture);
        assert_eq!(goldens.len(), arms, "{set}: one golden per sweep arm");
        for golden in goldens {
            let rerun = scenarios::run(&golden.spec);
            assert_eq!(
                rerun.metrics, golden.metrics,
                "{} diverged from its pinned outcome",
                golden.spec.name
            );
        }
    }
}

/// The regression bound on time-to-recovery: with packet clearing every N
/// source blocks, a restarted relayer resumes useful delivery within one
/// clear interval plus one block — the worst case of restarting right after
/// a clear height and waiting out the next scan plus its delivery block.
#[test]
fn crash_recovery_obeys_the_packet_clearing_bound() {
    let crashed: Vec<ScenarioOutcome> = parse(RELAYER_CRASH_GOLDENS)
        .into_iter()
        .filter(|o| !o.spec.deployment.fault_plan.is_empty())
        .collect();
    assert!(!crashed.is_empty(), "the fixture pins a crash arm");
    for outcome in crashed {
        let clear_interval = outcome
            .spec
            .deployment
            .relayer_strategy
            .packet_clear_interval;
        assert!(
            clear_interval > 0,
            "the crash scenario relies on packet clearing as its recovery mechanism"
        );
        let bound = (clear_interval + 1) as f64 * outcome.avg_block_interval_secs();
        let recovery = outcome
            .recovery_secs()
            .expect("the crash arm observes a recovery");
        assert!(
            (0.0..=bound).contains(&recovery),
            "{}: time-to-recovery {recovery:.3}s outside the clearing bound {bound:.3}s",
            outcome.spec.name
        );
        assert_eq!(outcome.double_submitted(), 0);
        assert_eq!(outcome.stranded_packets(), 0);
    }
}

/// A small crash/restart run: a fixed batch submitted over the first blocks,
/// one relayer that crashes at `crash_at` and restarts `down` seconds later,
/// packet clearing every 2 source blocks as the recovery mechanism.
fn crash_spec(seed: u64, crash_at: u64, down: u64) -> ExperimentSpec {
    ExperimentSpec::latency()
        .named("prop/fault_recovery")
        .transfers(40)
        .submission_blocks(2)
        .measurement_blocks(10)
        .rtt_ms(0)
        .packet_clearing(2)
        .seed(seed)
        .fault_plan(FaultPlan::new([
            FaultEvent::RelayerCrash {
                relayer: 0,
                at: SimDuration::from_secs(crash_at),
            },
            FaultEvent::RelayerRestart {
                relayer: 0,
                at: SimDuration::from_secs(crash_at + down),
            },
        ]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Whatever the seed, crash instant or outage length, the restarted
    /// process never commits a receive the destination chain has already
    /// executed: the pre-broadcast unreceived-packets filter and the
    /// in-flight marker bookkeeping hold across a cold restart.
    #[test]
    fn a_restarted_relayer_never_double_submits(
        seed in 0u64..1_000,
        crash_at in 6u64..20,
        down in 3u64..12,
    ) {
        let outcome = scenarios::run(&crash_spec(seed, crash_at, down));
        prop_assert_eq!(
            outcome.double_submitted(),
            0,
            "seed={} crash_at={}s down={}s double-submitted a receive",
            seed, crash_at, down
        );
    }

    /// With packet clearing enabled, every transfer initiated before the
    /// fault eventually completes: the clear scan rescues whatever the
    /// crashed incarnation dropped, so nothing is stranded and the whole
    /// batch drains.
    #[test]
    fn transfers_initiated_before_a_fault_complete_once_cleared(
        seed in 0u64..1_000,
        crash_at in 6u64..20,
    ) {
        let outcome = scenarios::run(&crash_spec(seed, crash_at, 8));
        prop_assert_eq!(
            outcome.stranded_packets(),
            0,
            "seed={} crash_at={}s stranded packets",
            seed, crash_at
        );
        prop_assert_eq!(
            outcome.completed(),
            40,
            "seed={} crash_at={}s lost transfers",
            seed, crash_at
        );
    }
}
