//! Umbrella crate for the IBC performance reproduction workspace.
//!
//! Re-exports every sub-crate under a single dependency so the examples,
//! integration tests and downstream users can reach the whole stack through
//! one import:
//!
//! * [`sim`] — discrete-event simulation kernel;
//! * [`tendermint`] — Tendermint-like consensus substrate;
//! * [`chain`] — Cosmos-SDK-like application chain;
//! * [`ibc`] — the IBC protocol (clients, connections, channels, ICS-20);
//! * [`rpc`] — the sequential Tendermint RPC / WebSocket model;
//! * [`relayer`] — the Hermes-like relayer;
//! * [`framework`] — the paper's cross-chain benchmarking framework.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use xcc_chain as chain;
pub use xcc_framework as framework;
pub use xcc_ibc as ibc;
pub use xcc_relayer as relayer;
pub use xcc_rpc as rpc;
pub use xcc_sim as sim;
pub use xcc_tendermint as tendermint;
