//! `#[derive(Serialize, Deserialize)]` for the workspace-local serde shim.
//!
//! The build environment has no access to crates.io, so this proc-macro
//! re-implements the subset of serde's derive that this workspace uses:
//! non-generic structs (named, tuple/newtype, unit) and enums (unit, tuple
//! and struct variants), without `#[serde(...)]` attributes. Representation
//! follows serde's external tagging so derived types round-trip through the
//! vendored `serde_json`.

use proc_macro::{Delimiter, TokenStream, TokenTree};

/// A parsed field list.
enum Fields {
    Named(Vec<String>),
    Tuple(usize),
    Unit,
}

struct Variant {
    name: String,
    fields: Fields,
}

enum Item {
    Struct {
        name: String,
        fields: Fields,
    },
    Enum {
        name: String,
        variants: Vec<Variant>,
    },
}

fn tokens(input: TokenStream) -> Vec<TokenTree> {
    input.into_iter().collect()
}

/// Skips attributes (`# [...]`) and visibility (`pub`, `pub(crate)`) starting
/// at `i`, returning the next significant index.
fn skip_attrs_and_vis(toks: &[TokenTree], mut i: usize) -> usize {
    loop {
        match toks.get(i) {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                i += 1; // the attribute body group
                if matches!(toks.get(i), Some(TokenTree::Group(_))) {
                    i += 1;
                }
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                i += 1;
                if let Some(TokenTree::Group(g)) = toks.get(i) {
                    if g.delimiter() == Delimiter::Parenthesis {
                        i += 1;
                    }
                }
            }
            _ => return i,
        }
    }
}

/// Splits the tokens of a field-list group on top-level commas (commas inside
/// nested groups or angle brackets do not split).
fn split_top_level(toks: &[TokenTree]) -> Vec<Vec<TokenTree>> {
    let mut parts: Vec<Vec<TokenTree>> = Vec::new();
    let mut current: Vec<TokenTree> = Vec::new();
    let mut angle: i32 = 0;
    for t in toks {
        if let TokenTree::Punct(p) = t {
            match p.as_char() {
                '<' => angle += 1,
                '>' => angle -= 1,
                ',' if angle == 0 => {
                    parts.push(std::mem::take(&mut current));
                    continue;
                }
                _ => {}
            }
        }
        current.push(t.clone());
    }
    if !current.is_empty() {
        parts.push(current);
    }
    parts
}

fn parse_named_fields(group: &[TokenTree]) -> Vec<String> {
    split_top_level(group)
        .iter()
        .filter_map(|part| {
            let i = skip_attrs_and_vis(part, 0);
            match part.get(i) {
                Some(TokenTree::Ident(id)) => Some(id.to_string()),
                _ => None,
            }
        })
        .collect()
}

fn parse_variants(group: &[TokenTree]) -> Vec<Variant> {
    split_top_level(group)
        .iter()
        .filter_map(|part| {
            let i = skip_attrs_and_vis(part, 0);
            let name = match part.get(i) {
                Some(TokenTree::Ident(id)) => id.to_string(),
                _ => return None,
            };
            let fields = match part.get(i + 1) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(&tokens(g.stream())))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(split_top_level(&tokens(g.stream())).len())
                }
                _ => Fields::Unit,
            };
            Some(Variant { name, fields })
        })
        .collect()
}

fn parse_item(input: TokenStream) -> Result<Item, String> {
    let toks = tokens(input);
    let mut i = skip_attrs_and_vis(&toks, 0);
    let kind = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct or enum, found {other:?}")),
    };
    i += 1;
    let name = match toks.get(i) {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected type name, found {other:?}")),
    };
    i += 1;
    if let Some(TokenTree::Punct(p)) = toks.get(i) {
        if p.as_char() == '<' {
            return Err(format!(
                "serde shim derive does not support generic type `{name}`"
            ));
        }
    }
    match kind.as_str() {
        "struct" => {
            let fields = match toks.get(i) {
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => {
                    Fields::Named(parse_named_fields(&tokens(g.stream())))
                }
                Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Parenthesis => {
                    Fields::Tuple(split_top_level(&tokens(g.stream())).len())
                }
                _ => Fields::Unit,
            };
            Ok(Item::Struct { name, fields })
        }
        "enum" => match toks.get(i) {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => Ok(Item::Enum {
                name,
                variants: parse_variants(&tokens(g.stream())),
            }),
            other => Err(format!("expected enum body, found {other:?}")),
        },
        other => Err(format!("cannot derive for `{other}`")),
    }
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Derives `serde::Serialize` (shim version).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let mut body = String::new();
    let name;
    match &item {
        Item::Struct { name: n, fields } => {
            name = n.clone();
            match fields {
                Fields::Named(names) => {
                    body.push_str("let mut m = Vec::new();\n");
                    for f in names {
                        body.push_str(&format!(
                            "m.push(({f:?}.to_string(), ::serde::Serialize::to_value(&self.{f})));\n"
                        ));
                    }
                    body.push_str("::serde::Value::Map(m)\n");
                }
                Fields::Tuple(1) => body.push_str("::serde::Serialize::to_value(&self.0)\n"),
                Fields::Tuple(n) => {
                    body.push_str("let mut s = Vec::new();\n");
                    for idx in 0..*n {
                        body.push_str(&format!(
                            "s.push(::serde::Serialize::to_value(&self.{idx}));\n"
                        ));
                    }
                    body.push_str("::serde::Value::Seq(s)\n");
                }
                Fields::Unit => body.push_str("::serde::Value::Null\n"),
            }
        }
        Item::Enum { name: n, variants } => {
            name = n.clone();
            body.push_str("match self {\n");
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => body.push_str(&format!(
                        "{name}::{vn} => ::serde::Value::Str({vn:?}.to_string()),\n"
                    )),
                    Fields::Tuple(1) => body.push_str(&format!(
                        "{name}::{vn}(f0) => ::serde::Value::Map(vec![({vn:?}.to_string(), ::serde::Serialize::to_value(f0))]),\n"
                    )),
                    Fields::Tuple(n) => {
                        let binds: Vec<String> = (0..*n).map(|i| format!("f{i}")).collect();
                        let items: Vec<String> = binds
                            .iter()
                            .map(|b| format!("::serde::Serialize::to_value({b})"))
                            .collect();
                        body.push_str(&format!(
                            "{name}::{vn}({}) => ::serde::Value::Map(vec![({vn:?}.to_string(), ::serde::Value::Seq(vec![{}]))]),\n",
                            binds.join(", "),
                            items.join(", ")
                        ));
                    }
                    Fields::Named(names) => {
                        let items: Vec<String> = names
                            .iter()
                            .map(|f| format!("({f:?}.to_string(), ::serde::Serialize::to_value({f}))"))
                            .collect();
                        body.push_str(&format!(
                            "{name}::{vn} {{ {} }} => ::serde::Value::Map(vec![({vn:?}.to_string(), ::serde::Value::Map(vec![{}]))]),\n",
                            names.join(", "),
                            items.join(", ")
                        ));
                    }
                }
            }
            body.push_str("}\n");
        }
    }
    format!(
        "impl ::serde::Serialize for {name} {{\n\
         fn to_value(&self) -> ::serde::Value {{\n{body}}}\n}}\n"
    )
    .parse()
    .unwrap()
}

/// Derives `serde::Deserialize` (shim version).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let item = match parse_item(input) {
        Ok(item) => item,
        Err(e) => return compile_error(&e),
    };
    let mut body = String::new();
    let name;
    match &item {
        Item::Struct { name: n, fields } => {
            name = n.clone();
            match fields {
                Fields::Named(names) => {
                    body.push_str(&format!(
                        "let m = v.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map for struct {name}\"))?;\n"
                    ));
                    let inits: Vec<String> = names
                        .iter()
                        .map(|f| format!("{f}: ::serde::de_field(m, {f:?})?"))
                        .collect();
                    body.push_str(&format!("Ok({name} {{ {} }})\n", inits.join(", ")));
                }
                Fields::Tuple(1) => {
                    body.push_str(&format!(
                        "Ok({name}(::serde::Deserialize::from_value(v)?))\n"
                    ));
                }
                Fields::Tuple(n) => {
                    body.push_str(&format!(
                        "let s = v.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected seq for struct {name}\"))?;\n\
                         if s.len() != {n} {{ return Err(::serde::Error::custom(\"wrong tuple arity for {name}\")); }}\n"
                    ));
                    let inits: Vec<String> = (0..*n)
                        .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?"))
                        .collect();
                    body.push_str(&format!("Ok({name}({}))\n", inits.join(", ")));
                }
                Fields::Unit => body.push_str(&format!("let _ = v; Ok({name})\n")),
            }
        }
        Item::Enum { name: n, variants } => {
            name = n.clone();
            body.push_str("match v {\n::serde::Value::Str(s) => match s.as_str() {\n");
            for v in variants {
                if matches!(v.fields, Fields::Unit) {
                    let vn = &v.name;
                    body.push_str(&format!("{vn:?} => Ok({name}::{vn}),\n"));
                }
            }
            body.push_str(&format!(
                "other => Err(::serde::Error::custom(format!(\"unknown variant {{other}} of {name}\"))),\n}},\n"
            ));
            body.push_str("::serde::Value::Map(m) if m.len() == 1 => {\nlet (tag, inner) = (&m[0].0, &m[0].1);\nmatch tag.as_str() {\n");
            for v in variants {
                let vn = &v.name;
                match &v.fields {
                    Fields::Unit => {}
                    Fields::Tuple(1) => body.push_str(&format!(
                        "{vn:?} => Ok({name}::{vn}(::serde::Deserialize::from_value(inner)?)),\n"
                    )),
                    Fields::Tuple(cnt) => {
                        let inits: Vec<String> = (0..*cnt)
                            .map(|i| format!("::serde::Deserialize::from_value(&s[{i}])?"))
                            .collect();
                        body.push_str(&format!(
                            "{vn:?} => {{\nlet s = inner.as_seq().ok_or_else(|| ::serde::Error::custom(\"expected seq variant\"))?;\n\
                             if s.len() != {cnt} {{ return Err(::serde::Error::custom(\"wrong variant arity\")); }}\n\
                             Ok({name}::{vn}({}))\n}},\n",
                            inits.join(", ")
                        ));
                    }
                    Fields::Named(names) => {
                        let inits: Vec<String> = names
                            .iter()
                            .map(|f| format!("{f}: ::serde::de_field(mm, {f:?})?"))
                            .collect();
                        body.push_str(&format!(
                            "{vn:?} => {{\nlet mm = inner.as_map().ok_or_else(|| ::serde::Error::custom(\"expected map variant\"))?;\n\
                             Ok({name}::{vn} {{ {} }})\n}},\n",
                            inits.join(", ")
                        ));
                    }
                }
            }
            body.push_str(&format!(
                "other => Err(::serde::Error::custom(format!(\"unknown variant {{other}} of {name}\"))),\n}}\n}},\n\
                 _ => Err(::serde::Error::custom(\"expected string or single-entry map for enum {name}\")),\n}}\n"
            ));
        }
    }
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
         fn from_value(v: &::serde::Value) -> ::core::result::Result<{name}, ::serde::Error> {{\n{body}}}\n}}\n"
    )
    .parse()
    .unwrap()
}
