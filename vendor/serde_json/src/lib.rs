//! Workspace-local shim for the `serde_json` crate, backed by the vendored
//! `serde` shim's [`serde::Value`] tree and JSON codec.

pub use serde::Error;
pub use serde::Value;

use serde::{json, Deserialize, Serialize};

/// Serializes a value to compact JSON text.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(json::to_json(&value.to_value(), false))
}

/// Serializes a value to pretty JSON text (2-space indentation).
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    Ok(json::to_json(&value.to_value(), true))
}

/// Serializes a value to compact JSON bytes.
pub fn to_vec<T: Serialize + ?Sized>(value: &T) -> Result<Vec<u8>, Error> {
    to_string(value).map(String::into_bytes)
}

/// Deserializes a value from JSON text.
pub fn from_str<T: Deserialize>(text: &str) -> Result<T, Error> {
    T::from_value(&json::parse(text)?)
}

/// Deserializes a value from JSON bytes.
pub fn from_slice<T: Deserialize>(bytes: &[u8]) -> Result<T, Error> {
    let text =
        std::str::from_utf8(bytes).map_err(|_| Error::custom("invalid UTF-8 in JSON input"))?;
    from_str(text)
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn encoded_len_matches_rendered_compact_json() {
        let values = [
            serde::Value::Null,
            serde::Value::Bool(true),
            serde::Value::Bool(false),
            serde::Value::I64(-1_234_567),
            serde::Value::U128(u128::MAX),
            serde::Value::U128(0),
            serde::Value::F64(5.0),
            serde::Value::F64(-0.125),
            serde::Value::Str("quote \" slash \\ tab \t ünïcode \u{1}".into()),
            serde::Value::Seq(vec![]),
            serde::Value::Map(vec![]),
            serde::Value::Seq(vec![
                serde::Value::U128(10),
                serde::Value::Map(vec![
                    ("a\nb".into(), serde::Value::Null),
                    ("c".into(), serde::Value::Seq(vec![serde::Value::I64(-9)])),
                ]),
            ]),
        ];
        for v in values {
            let text = serde::json::to_json(&v, false);
            assert_eq!(
                serde::json::encoded_len(&v),
                text.len(),
                "encoded_len diverges for {text}"
            );
        }
    }

    #[test]
    fn scalars_round_trip() {
        for text in ["null", "true", "false", "5", "-3", "5.5", "\"hi\\n\""] {
            let v = serde::json::parse(text).unwrap();
            assert_eq!(serde::json::to_json(&v, false), text);
        }
    }

    #[test]
    fn map_round_trips_pretty() {
        let mut m = BTreeMap::new();
        m.insert("a".to_string(), 1.5f64);
        m.insert("b".to_string(), 2.0f64);
        let text = to_string_pretty(&m).unwrap();
        assert!(text.contains("\"a\": 1.5"));
        assert!(text.contains("\"b\": 2.0"));
        let back: BTreeMap<String, f64> = from_str(&text).unwrap();
        assert_eq!(back, m);
        // Serialize → parse → serialize is byte-identical.
        assert_eq!(to_string_pretty(&back).unwrap(), text);
    }

    #[test]
    fn tuple_map_keys_round_trip() {
        let mut m: BTreeMap<(String, String), u128> = BTreeMap::new();
        m.insert(("alice".into(), "uatom".into()), 42);
        let text = to_string(&m).unwrap();
        let back: BTreeMap<(String, String), u128> = from_str(&text).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn nested_structures_round_trip() {
        let v: Vec<Option<Vec<u8>>> = vec![None, Some(vec![1, 2, 3]), Some(vec![])];
        let text = to_string(&v).unwrap();
        assert_eq!(text, "[null,[1,2,3],[]]");
        let back: Vec<Option<Vec<u8>>> = from_str(&text).unwrap();
        assert_eq!(back, v);
    }
}
