//! Workspace-local shim for the `serde` crate.
//!
//! The build environment has no route to crates.io, so this crate provides
//! the subset of serde that the workspace uses: `Serialize`/`Deserialize`
//! traits with derive macros, implemented over a small JSON-shaped [`Value`]
//! tree. The companion `serde_json` shim renders and parses that tree.
//!
//! Semantics follow serde where the workspace depends on them:
//!
//! * structs serialize to maps in declared field order;
//! * newtype structs serialize transparently as their inner value;
//! * enums use external tagging (`"Variant"` / `{"Variant": ...}`);
//! * maps with non-string keys encode the key as its compact JSON text.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::BTreeMap;
use std::fmt;

/// A JSON-shaped value tree — the shim's entire data model.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// JSON `null`.
    Null,
    /// JSON boolean.
    Bool(bool),
    /// A negative integer.
    I64(i64),
    /// A non-negative integer (covers u8 through u128).
    U128(u128),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Seq(Vec<Value>),
    /// An object; insertion order is preserved.
    Map(Vec<(String, Value)>),
}

impl Value {
    /// The entries of an object value, if this is one.
    pub fn as_map(&self) -> Option<&[(String, Value)]> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// The items of an array value, if this is one.
    pub fn as_seq(&self) -> Option<&[Value]> {
        match self {
            Value::Seq(s) => Some(s),
            _ => None,
        }
    }
}

/// Serialization/deserialization error.
#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl Error {
    /// Creates an error from a message.
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error {
            msg: msg.to_string(),
        }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.msg)
    }
}

impl std::error::Error for Error {}

/// Types that can be converted into a [`Value`].
pub trait Serialize {
    /// Converts `self` into the shim data model.
    fn to_value(&self) -> Value;
}

/// Types that can be reconstructed from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from the shim data model.
    fn from_value(v: &Value) -> Result<Self, Error>;
}

/// Looks up a struct field during deserialization (used by the derive).
pub fn de_field<T: Deserialize>(map: &[(String, Value)], name: &str) -> Result<T, Error> {
    match map.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => Err(Error::custom(format!("missing field `{name}`"))),
    }
}

/// Like [`de_field`], but a missing field yields `T::default()` instead of
/// an error — the building block for backward-compatible hand-written
/// `Deserialize` impls whose newer fields must tolerate older JSON.
pub fn de_field_or_default<T: Deserialize + Default>(
    map: &[(String, Value)],
    name: &str,
) -> Result<T, Error> {
    match map.iter().find(|(k, _)| k == name) {
        Some((_, v)) => T::from_value(v),
        None => Ok(T::default()),
    }
}

// ---------------------------------------------------------------------------
// Primitive impls
// ---------------------------------------------------------------------------

macro_rules! impl_unsigned {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U128(*self as u128) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U128(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    Value::I64(n) if *n >= 0 => <$t>::try_from(*n as u128)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(Error::custom(concat!("expected unsigned integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_unsigned!(u8, u16, u32, u64, u128, usize);

macro_rules! impl_signed {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                if *self >= 0 { Value::U128(*self as u128) } else { Value::I64(*self as i64) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::U128(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    Value::I64(n) => <$t>::try_from(*n)
                        .map_err(|_| Error::custom(concat!("integer out of range for ", stringify!($t)))),
                    _ => Err(Error::custom(concat!("expected integer for ", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_signed!(i8, i16, i32, i64, isize);

impl Serialize for i128 {
    fn to_value(&self) -> Value {
        if *self >= 0 {
            Value::U128(*self as u128)
        } else {
            Value::I64(*self as i64)
        }
    }
}

impl Deserialize for i128 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::U128(n) => {
                i128::try_from(*n).map_err(|_| Error::custom("integer out of range for i128"))
            }
            Value::I64(n) => Ok(*n as i128),
            _ => Err(Error::custom("expected integer for i128")),
        }
    }
}

macro_rules! impl_float {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::F64(*self as f64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::F64(x) => Ok(*x as $t),
                    Value::U128(n) => Ok(*n as $t),
                    Value::I64(n) => Ok(*n as $t),
                    _ => Err(Error::custom(concat!("expected number for ", stringify!($t)))),
                }
            }
        }
    )*};
}
impl_float!(f32, f64);

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Bool(b) => Ok(*b),
            _ => Err(Error::custom("expected boolean")),
        }
    }
}

impl Serialize for char {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl Deserialize for char {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) if s.chars().count() == 1 => Ok(s.chars().next().unwrap()),
            _ => Err(Error::custom("expected single-character string")),
        }
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            _ => Err(Error::custom("expected string")),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_string())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize + ?Sized> Serialize for Box<T> {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Deserialize> Deserialize for Box<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(Box::new(T::from_value(v)?))
    }
}

// ---------------------------------------------------------------------------
// Containers
// ---------------------------------------------------------------------------

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(inner) => inner.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => Ok(Some(T::from_value(other)?)),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Seq(items) => items.iter().map(T::from_value).collect(),
            _ => Err(Error::custom("expected array")),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize, const N: usize> Serialize for [T; N] {
    fn to_value(&self) -> Value {
        Value::Seq(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize, const N: usize> Deserialize for [T; N] {
    fn from_value(v: &Value) -> Result<Self, Error> {
        let items: Vec<T> = Vec::from_value(v)?;
        items
            .try_into()
            .map_err(|_| Error::custom("wrong array length"))
    }
}

macro_rules! impl_tuple {
    ($(($($t:ident $idx:tt),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Seq(vec![$(self.$idx.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                let s = v.as_seq().ok_or_else(|| Error::custom("expected tuple array"))?;
                let expected = [$($idx),+].len();
                if s.len() != expected {
                    return Err(Error::custom("wrong tuple length"));
                }
                Ok(($($t::from_value(&s[$idx])?,)+))
            }
        }
    )*};
}
impl_tuple! {
    (A 0)
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

/// Renders a map key: string keys pass through; integer-ish keys use their
/// decimal text; anything else uses its compact JSON text (round-tripped on
/// deserialization).
fn key_to_string(v: Value) -> String {
    match v {
        Value::Str(s) => s,
        Value::U128(n) => n.to_string(),
        Value::I64(n) => n.to_string(),
        Value::Bool(b) => b.to_string(),
        other => json::to_json(&other, false),
    }
}

fn key_from_str<K: Deserialize>(s: &str) -> Result<K, Error> {
    match K::from_value(&Value::Str(s.to_string())) {
        Ok(k) => Ok(k),
        Err(_) => {
            let v = json::parse(s)?;
            K::from_value(&v)
        }
    }
}

impl<K: Serialize, V: Serialize> Serialize for BTreeMap<K, V> {
    fn to_value(&self) -> Value {
        Value::Map(
            self.iter()
                .map(|(k, v)| (key_to_string(k.to_value()), v.to_value()))
                .collect(),
        )
    }
}

impl<K: Deserialize + Ord, V: Deserialize> Deserialize for BTreeMap<K, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Map(entries) => entries
                .iter()
                .map(|(k, v)| Ok((key_from_str::<K>(k)?, V::from_value(v)?)))
                .collect(),
            _ => Err(Error::custom("expected object")),
        }
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}

impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

pub mod binary;
pub mod json;
