//! JSON text rendering and parsing over [`crate::Value`], shared by
//! the `serde_json` shim and by map-key encoding.

use crate::{Error, Value};

/// Renders a value as JSON text; `pretty` uses 2-space indentation in the
//  style of `serde_json::to_string_pretty`.
pub fn to_json(v: &Value, pretty: bool) -> String {
    let mut out = String::new();
    write_value(&mut out, v, pretty, 0);
    out
}

fn write_indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_value(out: &mut String, v: &Value, pretty: bool, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::U128(n) => out.push_str(&n.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                // `{:?}` prints the shortest representation that round-trips,
                // always with a decimal point or exponent (e.g. `5.0`).
                out.push_str(&format!("{x:?}"));
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => write_string(out, s),
        Value::Seq(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    write_indent(out, depth + 1);
                }
                write_value(out, item, pretty, depth + 1);
            }
            if pretty {
                out.push('\n');
                write_indent(out, depth);
            }
            out.push(']');
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, value)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if pretty {
                    out.push('\n');
                    write_indent(out, depth + 1);
                }
                write_string(out, key);
                out.push(':');
                if pretty {
                    out.push(' ');
                }
                write_value(out, value, pretty, depth + 1);
            }
            if pretty {
                out.push('\n');
                write_indent(out, depth);
            }
            out.push('}');
        }
    }
}

/// The exact byte length of `to_json(v, false)`, computed without rendering
/// the text. The simulator uses this to model JSON-RPC wire sizes (block
/// bytes, WebSocket frames) while shipping transactions through the compact
/// [`binary`](crate::binary) codec.
pub fn encoded_len(v: &Value) -> usize {
    match v {
        Value::Null => 4,
        Value::Bool(b) => {
            if *b {
                4
            } else {
                5
            }
        }
        Value::I64(n) => {
            let sign = usize::from(*n < 0);
            sign + decimal_len(n.unsigned_abs() as u128)
        }
        Value::U128(n) => decimal_len(*n),
        Value::F64(x) => {
            if x.is_finite() {
                // Rare in hot-path values; fall back to the real rendering so
                // the modelled length can never drift from `to_json`.
                format!("{x:?}").len()
            } else {
                4
            }
        }
        Value::Str(s) => string_len(s),
        Value::Seq(items) => {
            if items.is_empty() {
                2
            } else {
                1 + items.len() + items.iter().map(encoded_len).sum::<usize>()
            }
        }
        Value::Map(entries) => {
            if entries.is_empty() {
                2
            } else {
                1 + entries.len() * 2
                    + entries
                        .iter()
                        .map(|(key, value)| string_len(key) + encoded_len(value))
                        .sum::<usize>()
            }
        }
    }
}

fn decimal_len(mut n: u128) -> usize {
    let mut digits = 1;
    while n >= 10 {
        n /= 10;
        digits += 1;
    }
    digits
}

/// Length of `write_string(s)`: quotes plus per-character escape widths.
fn string_len(s: &str) -> usize {
    let mut len = 2;
    for c in s.chars() {
        len += match c {
            '"' | '\\' | '\n' | '\r' | '\t' => 2,
            c if (c as u32) < 0x20 => 6,
            c => c.len_utf8(),
        };
    }
    len
}

fn write_string(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses JSON text into a [`Value`].
pub fn parse(text: &str) -> Result<Value, Error> {
    let bytes = text.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(Error::custom("trailing characters after JSON value"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn expect(bytes: &[u8], pos: &mut usize, c: u8) -> Result<(), Error> {
    if *pos < bytes.len() && bytes[*pos] == c {
        *pos += 1;
        Ok(())
    } else {
        Err(Error::custom(format!(
            "expected `{}` at byte {}",
            c as char, pos
        )))
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(Error::custom("unexpected end of JSON input")),
        Some(b'n') => parse_keyword(bytes, pos, "null", Value::Null),
        Some(b't') => parse_keyword(bytes, pos, "true", Value::Bool(true)),
        Some(b'f') => parse_keyword(bytes, pos, "false", Value::Bool(false)),
        Some(b'"') => Ok(Value::Str(parse_string(bytes, pos)?)),
        Some(b'[') => {
            *pos += 1;
            let mut items = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b']') {
                *pos += 1;
                return Ok(Value::Seq(items));
            }
            loop {
                items.push(parse_value(bytes, pos)?);
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b']') => {
                        *pos += 1;
                        return Ok(Value::Seq(items));
                    }
                    _ => return Err(Error::custom("expected `,` or `]` in array")),
                }
            }
        }
        Some(b'{') => {
            *pos += 1;
            let mut entries = Vec::new();
            skip_ws(bytes, pos);
            if bytes.get(*pos) == Some(&b'}') {
                *pos += 1;
                return Ok(Value::Map(entries));
            }
            loop {
                skip_ws(bytes, pos);
                let key = parse_string(bytes, pos)?;
                skip_ws(bytes, pos);
                expect(bytes, pos, b':')?;
                let value = parse_value(bytes, pos)?;
                entries.push((key, value));
                skip_ws(bytes, pos);
                match bytes.get(*pos) {
                    Some(b',') => *pos += 1,
                    Some(b'}') => {
                        *pos += 1;
                        return Ok(Value::Map(entries));
                    }
                    _ => return Err(Error::custom("expected `,` or `}` in object")),
                }
            }
        }
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_keyword(bytes: &[u8], pos: &mut usize, word: &str, value: Value) -> Result<Value, Error> {
    if bytes[*pos..].starts_with(word.as_bytes()) {
        *pos += word.len();
        Ok(value)
    } else {
        Err(Error::custom(format!("invalid literal at byte {pos}")))
    }
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    expect(bytes, pos, b'"')?;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(Error::custom("unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{0008}'),
                    Some(b'f') => out.push('\u{000c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| Error::custom("truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| Error::custom("bad \\u escape"))?;
                        out.push(
                            char::from_u32(code)
                                .ok_or_else(|| Error::custom("bad \\u code point"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(Error::custom("bad escape sequence")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 character.
                let rest = std::str::from_utf8(&bytes[*pos..])
                    .map_err(|_| Error::custom("invalid UTF-8"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut is_float = false;
    while let Some(&b) = bytes.get(*pos) {
        match b {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                is_float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text =
        std::str::from_utf8(&bytes[start..*pos]).map_err(|_| Error::custom("invalid number"))?;
    if text.is_empty() || text == "-" {
        return Err(Error::custom(format!("invalid number at byte {start}")));
    }
    if is_float {
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    } else if let Some(stripped) = text.strip_prefix('-') {
        stripped
            .parse::<u128>()
            .ok()
            .and_then(|n| i64::try_from(n).ok().map(|n| Value::I64(-n)))
            .ok_or_else(|| Error::custom(format!("integer out of range `{text}`")))
    } else {
        text.parse::<u128>()
            .map(Value::U128)
            .map_err(|_| Error::custom(format!("invalid number `{text}`")))
    }
}
