//! A compact binary rendering of [`crate::Value`], shared by the
//! simulator's transaction hot path.
//!
//! The JSON text codec in [`json`](crate::json) is the right tool at the
//! reporting boundary (specs, outcomes, figures), but rendering and parsing
//! JSON text for every simulated transaction dominated experiment runtime.
//! This module serializes the same `Value` data model as a tag-prefixed
//! binary stream: one tag byte per node, LEB128 varints for lengths and
//! unsigned integers, little-endian fixed words for signed integers and
//! floats, and raw UTF-8 for strings.
//!
//! The encoding is injective (distinct values produce distinct byte strings)
//! and self-delimiting, so it is safe to hash and to round-trip:
//!
//! ```rust
//! use serde::{binary, Serialize, Value};
//!
//! let v = vec![1u64, 2, 3].to_value();
//! let bytes = binary::to_bytes(&v);
//! assert_eq!(binary::from_bytes(&bytes).unwrap(), v);
//! ```

use crate::{Error, Value};

const TAG_NULL: u8 = 0;
const TAG_FALSE: u8 = 1;
const TAG_TRUE: u8 = 2;
const TAG_I64: u8 = 3;
const TAG_U128: u8 = 4;
const TAG_F64: u8 = 5;
const TAG_STR: u8 = 6;
const TAG_SEQ: u8 = 7;
const TAG_MAP: u8 = 8;

/// Serializes a value tree to its compact binary form.
pub fn to_bytes(v: &Value) -> Vec<u8> {
    let mut out = Vec::with_capacity(128);
    write_value(&mut out, v);
    out
}

/// Parses a value tree previously produced by [`to_bytes`].
///
/// # Errors
///
/// Fails on unknown tags, truncated input, invalid UTF-8 in strings, or
/// trailing bytes after the root value.
pub fn from_bytes(bytes: &[u8]) -> Result<Value, Error> {
    let mut pos = 0usize;
    let value = read_value(bytes, &mut pos)?;
    if pos != bytes.len() {
        return Err(Error::custom("trailing bytes after binary value"));
    }
    Ok(value)
}

fn write_varint(out: &mut Vec<u8>, mut n: u128) {
    loop {
        let byte = (n & 0x7f) as u8;
        n >>= 7;
        if n == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(bytes: &[u8], pos: &mut usize) -> Result<u128, Error> {
    let mut value = 0u128;
    let mut shift = 0u32;
    loop {
        let byte = *bytes
            .get(*pos)
            .ok_or_else(|| Error::custom("truncated varint"))?;
        *pos += 1;
        if shift >= 128 {
            return Err(Error::custom("varint overflows u128"));
        }
        let part = u128::from(byte & 0x7f);
        // The 19th group only has room for the top two bits of a u128; any
        // higher bit set would be shifted out silently, breaking injectivity.
        if shift > 121 && part >> (128 - shift) != 0 {
            return Err(Error::custom("varint overflows u128"));
        }
        value |= part << shift;
        if byte & 0x80 == 0 {
            return Ok(value);
        }
        shift += 7;
    }
}

fn write_value(out: &mut Vec<u8>, v: &Value) {
    match v {
        Value::Null => out.push(TAG_NULL),
        Value::Bool(false) => out.push(TAG_FALSE),
        Value::Bool(true) => out.push(TAG_TRUE),
        Value::I64(n) => {
            out.push(TAG_I64);
            out.extend_from_slice(&n.to_le_bytes());
        }
        Value::U128(n) => {
            out.push(TAG_U128);
            write_varint(out, *n);
        }
        Value::F64(x) => {
            out.push(TAG_F64);
            out.extend_from_slice(&x.to_bits().to_le_bytes());
        }
        Value::Str(s) => {
            out.push(TAG_STR);
            write_varint(out, s.len() as u128);
            out.extend_from_slice(s.as_bytes());
        }
        Value::Seq(items) => {
            out.push(TAG_SEQ);
            write_varint(out, items.len() as u128);
            for item in items {
                write_value(out, item);
            }
        }
        Value::Map(entries) => {
            out.push(TAG_MAP);
            write_varint(out, entries.len() as u128);
            for (key, value) in entries {
                write_varint(out, key.len() as u128);
                out.extend_from_slice(key.as_bytes());
                write_value(out, value);
            }
        }
    }
}

fn read_exact<'a>(bytes: &'a [u8], pos: &mut usize, len: usize) -> Result<&'a [u8], Error> {
    let end = pos
        .checked_add(len)
        .filter(|end| *end <= bytes.len())
        .ok_or_else(|| Error::custom("truncated binary value"))?;
    let slice = &bytes[*pos..end];
    *pos = end;
    Ok(slice)
}

fn read_len(bytes: &[u8], pos: &mut usize) -> Result<usize, Error> {
    usize::try_from(read_varint(bytes, pos)?).map_err(|_| Error::custom("length overflows usize"))
}

fn read_string(bytes: &[u8], pos: &mut usize) -> Result<String, Error> {
    let len = read_len(bytes, pos)?;
    let raw = read_exact(bytes, pos, len)?;
    String::from_utf8(raw.to_vec()).map_err(|_| Error::custom("invalid UTF-8 in binary string"))
}

fn read_value(bytes: &[u8], pos: &mut usize) -> Result<Value, Error> {
    let tag = *bytes
        .get(*pos)
        .ok_or_else(|| Error::custom("truncated binary value"))?;
    *pos += 1;
    match tag {
        TAG_NULL => Ok(Value::Null),
        TAG_FALSE => Ok(Value::Bool(false)),
        TAG_TRUE => Ok(Value::Bool(true)),
        TAG_I64 => {
            let raw: [u8; 8] = read_exact(bytes, pos, 8)?.try_into().expect("8 bytes");
            Ok(Value::I64(i64::from_le_bytes(raw)))
        }
        TAG_U128 => Ok(Value::U128(read_varint(bytes, pos)?)),
        TAG_F64 => {
            let raw: [u8; 8] = read_exact(bytes, pos, 8)?.try_into().expect("8 bytes");
            Ok(Value::F64(f64::from_bits(u64::from_le_bytes(raw))))
        }
        TAG_STR => Ok(Value::Str(read_string(bytes, pos)?)),
        TAG_SEQ => {
            let len = read_len(bytes, pos)?;
            // Guard capacity against corrupt headers: each item needs ≥1 byte.
            let mut items = Vec::with_capacity(len.min(bytes.len() - *pos));
            for _ in 0..len {
                items.push(read_value(bytes, pos)?);
            }
            Ok(Value::Seq(items))
        }
        TAG_MAP => {
            let len = read_len(bytes, pos)?;
            let mut entries = Vec::with_capacity(len.min(bytes.len() - *pos));
            for _ in 0..len {
                let key = read_string(bytes, pos)?;
                let value = read_value(bytes, pos)?;
                entries.push((key, value));
            }
            Ok(Value::Map(entries))
        }
        other => Err(Error::custom(format!("unknown binary tag {other}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: Value) {
        let bytes = to_bytes(&v);
        assert_eq!(from_bytes(&bytes).unwrap(), v, "round-trip of {v:?}");
    }

    #[test]
    fn scalars_round_trip() {
        roundtrip(Value::Null);
        roundtrip(Value::Bool(true));
        roundtrip(Value::Bool(false));
        roundtrip(Value::I64(-42));
        roundtrip(Value::I64(i64::MIN));
        roundtrip(Value::U128(0));
        roundtrip(Value::U128(u128::MAX));
        roundtrip(Value::F64(3.25));
        roundtrip(Value::F64(f64::NEG_INFINITY));
        roundtrip(Value::Str(String::new()));
        roundtrip(Value::Str("héllo \"json\"\n".into()));
    }

    #[test]
    fn nested_structures_round_trip() {
        roundtrip(Value::Seq(vec![
            Value::Null,
            Value::Seq(vec![Value::U128(1), Value::U128(300)]),
            Value::Map(vec![
                ("a".into(), Value::Bool(true)),
                ("b".into(), Value::Str("x".into())),
            ]),
        ]));
        roundtrip(Value::Map(vec![]));
        roundtrip(Value::Seq(vec![]));
    }

    #[test]
    fn truncated_and_garbage_inputs_fail() {
        assert!(from_bytes(&[]).is_err());
        assert!(from_bytes(&[255]).is_err());
        assert!(from_bytes(&[TAG_STR, 5, b'h', b'i']).is_err());
        let mut ok = to_bytes(&Value::U128(7));
        ok.push(0);
        assert!(from_bytes(&ok).is_err(), "trailing bytes must be rejected");
    }

    #[test]
    fn varints_with_bits_beyond_u128_are_rejected_not_truncated() {
        // 18 continuation groups put the 19th at shift 126, where only the
        // two lowest bits fit; 0x7f there would silently drop five bits.
        let mut overflowing = vec![TAG_U128];
        overflowing.extend(std::iter::repeat_n(0x80, 18));
        overflowing.push(0x7f);
        assert!(from_bytes(&overflowing).is_err());

        // The maximum value itself still round-trips.
        let mut max = vec![TAG_U128];
        max.extend(std::iter::repeat_n(0xff, 18));
        max.push(0x03);
        assert_eq!(from_bytes(&max).unwrap(), Value::U128(u128::MAX));
    }

    #[test]
    fn encoding_is_much_smaller_than_json_for_numbers() {
        let v = Value::Seq((0..100u128).map(Value::U128).collect());
        let json = crate::json::to_json(&v, false);
        assert!(to_bytes(&v).len() < json.len());
    }
}
