//! Workspace-local shim for the `proptest` crate.
//!
//! The build environment has no route to crates.io, so this crate implements
//! the subset of proptest the workspace's property tests use: the
//! [`proptest!`] macro, `any::<T>()`, integer-range strategies, simple
//! string-pattern strategies, tuple strategies and `prop::collection`'s
//! `vec`/`btree_map`. Each test body runs against 128 deterministic
//! pseudo-random cases (no shrinking).

use std::marker::PhantomData;
use std::ops::Range;

/// Deterministic pseudo-random source driving test-case generation.
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from the test name, so every run of a given
    /// test explores the same cases.
    pub fn deterministic(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x1000_0000_01b3);
        }
        TestRng { state: h | 1 }
    }

    /// The next 64 random bits (splitmix64).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u128) -> u128 {
        assert!(bound > 0);
        if bound <= u64::MAX as u128 {
            (self.next_u64() as u128).wrapping_mul(bound) >> 64
        } else {
            let wide = ((self.next_u64() as u128) << 64) | self.next_u64() as u128;
            wide % bound
        }
    }
}

/// A source of values for one test parameter.
pub trait Strategy {
    /// The type of value this strategy produces.
    type Value;
    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Types with a canonical "any value" strategy.
pub trait ArbitraryValue: Sized {
    /// Draws an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl ArbitraryValue for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl ArbitraryValue for u128 {
    fn arbitrary(rng: &mut TestRng) -> Self {
        ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128
    }
}

impl ArbitraryValue for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// The strategy returned by [`any`].
pub struct Any<T>(PhantomData<T>);

impl<T: ArbitraryValue> Strategy for Any<T> {
    type Value = T;
    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Strategy producing any value of `T`.
pub fn any<T: ArbitraryValue>() -> Any<T> {
    Any(PhantomData)
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                ((self.start as u128).wrapping_add(rng.below(width))) as $t
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, u128, usize, i32, i64);

/// A `&str` strategy: a restricted character-class pattern such as
/// `"[a-z]{1,12}"`. Unrecognised patterns fall back to short lowercase
/// strings.
impl Strategy for &str {
    type Value = String;
    fn sample(&self, rng: &mut TestRng) -> String {
        let (lo, hi, chars) = parse_class_pattern(self).unwrap_or((1, 8, ('a', 'z')));
        let len = lo + rng.below((hi - lo + 1) as u128) as usize;
        let span = chars.1 as u32 - chars.0 as u32 + 1;
        (0..len)
            .map(|_| char::from_u32(chars.0 as u32 + rng.below(span as u128) as u32).unwrap())
            .collect()
    }
}

/// Parses `[x-y]{lo,hi}` patterns (the only shape used in this workspace).
fn parse_class_pattern(p: &str) -> Option<(usize, usize, (char, char))> {
    let rest = p.strip_prefix('[')?;
    let (class, rest) = rest.split_once(']')?;
    let mut class_chars = class.chars();
    let (a, dash, b) = (
        class_chars.next()?,
        class_chars.next()?,
        class_chars.next()?,
    );
    if dash != '-' || class_chars.next().is_some() {
        return None;
    }
    let rest = rest.strip_prefix('{')?.strip_suffix('}')?;
    let (lo, hi) = rest.split_once(',')?;
    Some((lo.trim().parse().ok()?, hi.trim().parse().ok()?, (a, b)))
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}
impl_tuple_strategy! {
    (A 0, B 1)
    (A 0, B 1, C 2)
    (A 0, B 1, C 2, D 3)
}

pub mod prop {
    //! The `prop::` namespace mirrored from the real crate.

    pub mod collection {
        //! Collection strategies.

        use super::super::{Strategy, TestRng};
        use std::collections::BTreeMap;
        use std::ops::Range;

        /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
        pub struct VecStrategy<S> {
            element: S,
            size: Range<usize>,
        }

        /// Builds a [`VecStrategy`].
        pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
            VecStrategy { element, size }
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let len = self.size.clone().sample(rng);
                (0..len).map(|_| self.element.sample(rng)).collect()
            }
        }

        /// Strategy for `BTreeMap<K::Value, V::Value>` with approximately
        /// `size` entries (duplicate keys collapse, as in real proptest).
        pub struct BTreeMapStrategy<K, V> {
            key: K,
            value: V,
            size: Range<usize>,
        }

        /// Builds a [`BTreeMapStrategy`].
        pub fn btree_map<K: Strategy, V: Strategy>(
            key: K,
            value: V,
            size: Range<usize>,
        ) -> BTreeMapStrategy<K, V>
        where
            K::Value: Ord,
        {
            BTreeMapStrategy { key, value, size }
        }

        impl<K: Strategy, V: Strategy> Strategy for BTreeMapStrategy<K, V>
        where
            K::Value: Ord,
        {
            type Value = BTreeMap<K::Value, V::Value>;
            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                let target = self.size.clone().sample(rng);
                let mut map = BTreeMap::new();
                // Bounded retries keep the minimum size honoured even when
                // duplicate keys collapse entries.
                for _ in 0..target.max(1) * 4 {
                    if map.len() >= target.max(self.size.start) {
                        break;
                    }
                    map.insert(self.key.sample(rng), self.value.sample(rng));
                }
                map
            }
        }
    }

    pub mod sample {
        //! Index sampling.

        use super::super::{ArbitraryValue, TestRng};

        /// An abstract index into a collection of unknown length.
        #[derive(Debug, Clone, Copy)]
        pub struct Index(usize);

        impl Index {
            /// Projects the abstract index onto a collection of `len` items.
            ///
            /// # Panics
            ///
            /// Panics if `len` is zero, as in the real crate.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "cannot index an empty collection");
                self.0 % len
            }
        }

        impl ArbitraryValue for Index {
            fn arbitrary(rng: &mut TestRng) -> Self {
                Index(rng.next_u64() as usize)
            }
        }
    }
}

/// Per-block test-runner configuration, mirroring the real crate's
/// `ProptestConfig` as far as this workspace uses it: the case count. The
/// default 128 suits cheap in-memory properties; properties whose body runs
/// a whole simulation dial it down with
/// `#![proptest_config(ProptestConfig::with_cases(n))]`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// How many deterministic pseudo-random cases each test body runs.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 128 }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Runs each property test body against deterministic pseudo-random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let cases = $crate::ProptestConfig::from($cfg).cases;
                let mut rng = $crate::TestRng::deterministic(stringify!($name));
                for _case in 0..cases {
                    $(let $arg = $crate::Strategy::sample(&$strat, &mut rng);)+
                    $body
                }
            }
        )+
    };
    ($($(#[$meta:meta])* fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block)+) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $($(#[$meta])* fn $name ( $($arg in $strat),+ ) $body)+
        }
    };
}

/// `assert!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under proptest's spelling.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

pub mod prelude {
    //! Everything a property-test module imports.

    pub use crate::prop;
    pub use crate::{any, Any, ArbitraryValue, ProptestConfig, Strategy, TestRng};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Re-exported for macro use.
pub use prop::sample::Index as SampleIndex;
