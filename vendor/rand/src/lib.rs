//! Workspace-local shim for the `rand` crate (0.8 API subset).
//!
//! Provides the pieces the workspace uses: [`RngCore`], [`SeedableRng`],
//! [`Rng::gen_range`]/[`Rng::gen_bool`] and [`rngs::StdRng`]. The generator
//! is xoshiro256** seeded via splitmix64 — deterministic for a given seed,
//! which is all the simulator requires (the real `rand` makes no cross-
//! version stream guarantees either).

use std::fmt;
use std::ops::Range;

/// Error type for fallible generator operations (always succeeds here).
#[derive(Debug)]
pub struct Error;

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "rand shim error")
    }
}

impl std::error::Error for Error {}

/// The core trait implemented by every generator.
pub trait RngCore {
    /// The next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
    /// Fallible version of [`RngCore::fill_bytes`].
    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
        self.fill_bytes(dest);
        Ok(())
    }
}

/// Generators that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Ranges that can be sampled uniformly.
pub trait SampleRange<T> {
    /// Draws one uniformly distributed value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let width = (self.end as u128).wrapping_sub(self.start as u128);
                // Widening-multiply bounded sampling; bias is negligible for
                // simulation purposes (width << 2^64).
                let hi = ((rng.next_u64() as u128).wrapping_mul(width) >> 64) as u128;
                let draw = if width > (1u128 << 64) {
                    // Extremely wide u128 ranges: combine two words.
                    let wide = ((rng.next_u64() as u128) << 64) | rng.next_u64() as u128;
                    wide % width
                } else {
                    hi
                };
                ((self.start as u128).wrapping_add(draw)) as $t
            }
        }
        impl SampleRange<$t> for std::ops::RangeInclusive<$t> {
            fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                if start == end {
                    return start;
                }
                SampleRange::<$t>::sample(start..end.wrapping_add(1), rng)
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, u128, usize, i32, i64);

impl SampleRange<f64> for Range<f64> {
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let unit = (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        self.start + (self.end - self.start) * unit
    }
}

/// Convenience methods layered over [`RngCore`], as in the real crate.
pub trait Rng: RngCore {
    /// Draws one value uniformly from `range`.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is outside `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "probability out of range: {p}");
        let unit = (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64);
        unit < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generator implementations.

    use super::{Error, RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (stands in for rand's `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        state: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let state = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { state }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let s = &mut self.state;
            let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let word = self.next_u64().to_le_bytes();
                chunk.copy_from_slice(&word[..chunk.len()]);
            }
        }

        fn try_fill_bytes(&mut self, dest: &mut [u8]) -> Result<(), Error> {
            self.fill_bytes(dest);
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_for_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = r.gen_range(3..17u64);
            assert!((3..17).contains(&x));
            let f: f64 = r.gen_range(-2.0..2.0);
            assert!((-2.0..2.0).contains(&f));
            let w: u128 = r.gen_range(1u128..1_000);
            assert!((1..1_000).contains(&w));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
    }
}
