//! Demonstrates the RPC bottleneck directly: the same packet-data pull issued
//! against blocks of growing size on the sequential Tendermint RPC endpoint.
//!
//! Run with: `cargo run --release --example rpc_bottleneck`

use xcc_rpc::cost::{RequestKind, RequestProfile, RpcCostModel};

fn main() {
    let model = RpcCostModel::default();
    println!("service time of one packet-data pull vs. IBC messages in the queried block:");
    for msgs in [100usize, 500, 1_000, 2_000, 5_000] {
        let transfer = model.service_time(&RequestProfile {
            kind: RequestKind::PacketDataPull,
            response_bytes: msgs * 600,
            messages: msgs,
            recv_heavy: false,
            items: 0,
        });
        let recv = model.service_time(&RequestProfile {
            kind: RequestKind::PacketDataPull,
            response_bytes: msgs * 1_200,
            messages: msgs,
            recv_heavy: true,
            items: 0,
        });
        let batched = model.service_time(&RequestProfile {
            kind: RequestKind::BatchedDataPull,
            response_bytes: msgs * 600,
            messages: msgs,
            recv_heavy: false,
            items: msgs,
        });
        println!(
            "  block with {:>5} msgs: transfer pull {:>6.2} s, recv pull {:>6.2} s, \
             one batched pull for everything {:>6.2} s",
            msgs,
            transfer.as_secs_f64(),
            recv.as_secs_f64(),
            batched.as_secs_f64()
        );
    }
    println!();
    println!(
        "A 5,000-transfer batch needs 50 pulls of each kind; with sequential RPC \
         processing this alone accounts for roughly 69% of the 455 s completion \
         latency the paper reports (Fig. 12). The batched column is the \
         `RelayerStrategy::batched_pulls()` counterfactual: one query paying \
         the block scan once."
    );
}
