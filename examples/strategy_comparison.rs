//! Runs the same workload under several relayer strategies, showing how each
//! pipeline stage the paper measures responds to its counterfactual:
//! batched/parallel data pulls attack the Fig. 12 RPC bottleneck, and
//! coordination eliminates the redundant work of Figs. 9/11.
//!
//! Run with: `cargo run --release --example strategy_comparison`

use xcc_framework::scenarios;
use xcc_framework::spec::ExperimentSpec;
use xcc_relayer::strategy::RelayerStrategy;

fn main() {
    let base = ExperimentSpec::relayer_throughput()
        .input_rate(60)
        .relayers(2)
        .rtt_ms(200)
        .measurement_blocks(8)
        .seed(42);
    println!(
        "{:<22} | {:>10} | {:>10} | {:>9} | {:>14}",
        "strategy", "TFPS", "completed", "partial", "redundant msgs"
    );
    for strategy in [
        RelayerStrategy::paper_default(),
        RelayerStrategy::batched_pulls(),
        RelayerStrategy::parallel_fetch(),
        RelayerStrategy::coordinated(),
        RelayerStrategy::leader_lease(4),
        RelayerStrategy::adaptive_submission(2),
    ] {
        let outcome = scenarios::run(&base.clone().strategy(strategy));
        println!(
            "{:<22} | {:>10.1} | {:>10} | {:>9} | {:>14}",
            strategy.label(),
            outcome.throughput_tfps(),
            outcome.completed(),
            outcome.partial(),
            outcome.redundant_packet_errors()
        );
    }
}
