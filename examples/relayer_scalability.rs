//! Compares one relayer against two uncoordinated relayers serving the same
//! channel (the paper's Figs. 8 and 9 observation that a second relayer
//! *decreases* throughput).
//!
//! Run with: `cargo run --release --example relayer_scalability`

use xcc_framework::scenarios;
use xcc_framework::spec::ExperimentSpec;

fn main() {
    let base = ExperimentSpec::relayer_throughput()
        .input_rate(60)
        .rtt_ms(200)
        .measurement_blocks(12)
        .seed(7);
    for relayers in [1usize, 2] {
        let outcome = scenarios::run(&base.clone().relayers(relayers));
        println!(
            "{} relayer(s): {:.1} TFPS, completed {}, partial {}, initiated {}, redundant msgs {}",
            relayers,
            outcome.throughput_tfps(),
            outcome.completed(),
            outcome.partial(),
            outcome.initiated(),
            outcome.redundant_packet_errors()
        );
    }
}
