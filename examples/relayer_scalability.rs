//! Compares one relayer against two uncoordinated relayers serving the same
//! channel (the paper's Figs. 8 and 9 observation that a second relayer
//! *decreases* throughput).
//!
//! Run with: `cargo run --release --example relayer_scalability`

use xcc_framework::scenarios::relayer_throughput;

fn main() {
    let rate = 60;
    let blocks = 12;
    for relayers in [1usize, 2] {
        let result = relayer_throughput(rate, relayers, 200, blocks, 7);
        println!(
            "{} relayer(s): {:.1} TFPS, completed {}, partial {}, initiated {}, redundant msgs {}",
            relayers,
            result.throughput_tfps,
            result.completed,
            result.partial,
            result.initiated,
            result.redundant_packet_errors
        );
    }
}
