//! Traces the 13-step life cycle of a batch of cross-chain transfers
//! (the paper's Fig. 12 view, at a small scale).
//!
//! Run with: `cargo run --release --example transfer_lifecycle`

use xcc_framework::scenarios;
use xcc_framework::spec::ExperimentSpec;

fn main() {
    let spec = ExperimentSpec::latency()
        .transfers(500)
        .submission_blocks(1)
        .rtt_ms(200)
        .seed(42);
    let outcome = scenarios::run(&spec);
    println!(
        "transfers:                {}",
        spec.workload.total_transfers
    );
    println!(
        "completion latency:       {:.1} s",
        outcome.completion_latency_secs()
    );
    println!(
        "transfer phase (1-4):     {:.1} s",
        outcome.transfer_phase_secs()
    );
    println!(
        "receive phase (5-9):      {:.1} s",
        outcome.recv_phase_secs()
    );
    println!(
        "ack phase (10-13):        {:.1} s",
        outcome.ack_phase_secs()
    );
    println!(
        "transfer data pull:       {:.1} s",
        outcome.transfer_pull_secs()
    );
    println!(
        "recv data pull:           {:.1} s",
        outcome.recv_pull_secs()
    );
    println!(
        "share of time in RPC data pulls: {:.0}%",
        outcome.data_pull_share() * 100.0
    );
}
