//! Traces the 13-step life cycle of a batch of cross-chain transfers
//! (the paper's Fig. 12 view, at a small scale).
//!
//! Run with: `cargo run --release --example transfer_lifecycle`

use xcc_framework::scenarios::latency_run;

fn main() {
    let result = latency_run(500, 1, 200, 42);
    println!("transfers:                {}", result.transfers);
    println!("completion latency:       {:.1} s", result.completion_latency_secs);
    println!("transfer phase (1-4):     {:.1} s", result.transfer_phase_secs);
    println!("receive phase (5-9):      {:.1} s", result.recv_phase_secs);
    println!("ack phase (10-13):        {:.1} s", result.ack_phase_secs);
    println!("transfer data pull:       {:.1} s", result.transfer_pull_secs);
    println!("recv data pull:           {:.1} s", result.recv_pull_secs);
    println!("share of time in RPC data pulls: {:.0}%", result.data_pull_share * 100.0);
}
