//! Sweeps the transaction submission strategy of Fig. 13: the same number of
//! transfers spread over 1 to 16 block windows, showing the completion
//! latency minimum in the middle of the range.
//!
//! Run with: `cargo run --release --example submission_strategies`

use xcc_framework::scenarios::latency_run;

fn main() {
    let transfers = 1_500;
    println!("{transfers} transfers, 200 ms RTT");
    for blocks in [1u64, 2, 4, 8, 16] {
        let result = latency_run(transfers, blocks, 200, 11);
        println!(
            "  submitted over {:>2} block(s): completion latency {:>7.1} s",
            blocks, result.completion_latency_secs
        );
    }
}
