//! Sweeps the transaction submission strategy of Fig. 13 on the parallel
//! sweep engine: the same number of transfers spread over 1 to 16 block
//! windows, showing the completion latency minimum in the middle of the
//! range.
//!
//! Run with: `cargo run --release --example submission_strategies`

use xcc_framework::spec::ExperimentSpec;
use xcc_framework::sweep::SweepGrid;

fn main() {
    let transfers = 1_500;
    let grid = SweepGrid::new(
        ExperimentSpec::latency()
            .named("submission_strategies")
            .transfers(transfers)
            .rtt_ms(200)
            .seed(11),
    )
    .submission_blocks([1, 2, 4, 8, 16]);

    println!(
        "{transfers} transfers, 200 ms RTT ({} sweep points, all cores)",
        grid.len()
    );
    for outcome in grid.run() {
        println!(
            "  submitted over {:>2} block(s): completion latency {:>7.1} s",
            outcome.spec.workload.submission_blocks,
            outcome.completion_latency_secs()
        );
    }
}
