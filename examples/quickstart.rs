//! Quickstart: deploy two simulated Cosmos chains connected by an IBC
//! channel, submit a small batch of cross-chain transfers, relay them with a
//! Hermes-like relayer, and print the execution report.
//!
//! Run with: `cargo run --release --example quickstart`

use xcc_framework::analysis;
use xcc_framework::scenarios;
use xcc_framework::spec::ExperimentSpec;
use xcc_relayer::telemetry::TransferStep;

fn main() {
    let spec = ExperimentSpec::latency()
        .named("quickstart")
        .transfers(300)
        .submission_blocks(1)
        .rtt_ms(200)
        .user_accounts(4)
        .seed(42);
    println!("spec:\n{}", spec.to_json());

    // `run_raw` keeps the chains and telemetry around for inspection;
    // `outcome_from` then computes the same unified outcome `run` would.
    let run = scenarios::run_raw(&spec);

    println!("source blocks produced: {}", run.blocks_a.len());
    println!("destination blocks produced: {}", run.blocks_b.len());
    println!(
        "transfers committed on source: {}",
        analysis::committed_transfers(&run)
    );
    for step in TransferStep::ALL {
        println!(
            "  step {:>2} {:<26} completed for {:>4} packets",
            step.index(),
            step.label(),
            run.telemetry.count_for_step(step)
        );
    }
    for (i, stats) in run.relayer_stats.iter().enumerate() {
        println!("relayer {i}: {stats:?}");
    }
    for err in run.telemetry.errors().iter().take(10) {
        println!("relayer error @{}: {}", err.at, err.message);
    }
    if std::env::var("XCC_DEBUG_BLOCKS").is_ok() {
        let chain = run.chain_a.borrow();
        for height in 1..=chain.height() {
            let block = chain.block_at(height).unwrap();
            print!("A h{height} ({} txs):", block.results.len());
            for result in &block.results {
                let kinds: Vec<&str> = result.events.iter().map(|e| e.kind.as_str()).collect();
                print!(
                    " [code {} log '{}' events {:?}]",
                    result.code,
                    result.log,
                    &kinds[..kinds.len().min(3)]
                );
            }
            println!();
        }
    }

    let outcome = scenarios::outcome_from(&spec, &run);
    println!("{}", outcome.to_report());
}
